//! The event-driven request engine.
//!
//! The paper's §4.1 pool dedicates a blocking thread to each connection
//! "from parsing to completion" — faithful, but a thread per idle
//! keep-alive client caps concurrency at `pool_size`. This engine keeps
//! the *execution* model (the same [`handle_request`] control flow on a
//! bounded pool of `pool_size` workers) but moves connection I/O onto one
//! readiness-polled loop thread: nonblocking sockets, buffered partial
//! reads, resumable vectored writes, and a per-connection state machine
//! (idle → reading → executing → writing). Ten thousand parked
//! keep-alive connections cost file descriptors, not threads.
//!
//! Observable semantics match the threaded pool byte for byte: the same
//! parser accepts the same wire format; idle connections close silently
//! after [`KEEP_ALIVE_IDLE`](crate::pool::KEEP_ALIVE_IDLE); a mid-request
//! stall earns `408 Request Timeout`; traces, histograms and access-log
//! lines are recorded at the same points with the same contents.
//!
//! Select it with `engine event` in `swala.conf` (or `SWALA_ENGINE=event`);
//! the default remains the paper-faithful threaded pool.

pub mod conn;
pub mod epoll;
pub mod source;
pub mod worker;

use crate::handler::{response_body_allowed, NodeContext};
use crate::pool::{KEEP_ALIVE_IDLE, READ_TICK};
use crate::stats::{EngineStats, RequestStats};
use conn::{Conn, ConnState, FinishMeta, WriteJob, WriteProgress};
use source::{EpollSource, Event, EventSource, Interest, WakeupHandle};
use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use swala_http::{try_parse_request, ParseStatus, Response, StatusCode};
use swala_obs::Stage;
use worker::{Completion, Job, WorkerPool};

/// Token of the accept socket. Connection tokens start above it.
/// The loop's wait timeout is [`READ_TICK`] — the deadline-sweep
/// granularity, matching the threaded pool's shutdown-poll tick.
const LISTENER_TOKEN: u64 = 0;

/// A running event engine: one loop thread plus `pool_size` workers.
pub struct EventEngine {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    waker: WakeupHandle,
    handle: Option<JoinHandle<()>>,
}

impl EventEngine {
    /// Take over `listener` and serve it until [`shutdown`](Self::shutdown).
    pub fn start(
        listener: TcpListener,
        ctx: Arc<NodeContext>,
        pool_size: usize,
    ) -> io::Result<EventEngine> {
        // Best effort: C10K needs more fds than the usual soft default,
        // and a deeper accept backlog than std's hardcoded 128 so a
        // connect storm doesn't cost clients SYN retransmits.
        let _ = epoll::raise_nofile_limit();
        let _ = epoll::deepen_backlog(listener.as_raw_fd(), 4096);
        let source = EpollSource::new()?;
        Self::start_with_source(listener, ctx, pool_size, source)
    }

    /// Seam for tests: run the identical loop over any event source.
    pub fn start_with_source<S: EventSource>(
        listener: TcpListener,
        ctx: Arc<NodeContext>,
        pool_size: usize,
        mut source: S,
    ) -> io::Result<EventEngine> {
        assert!(pool_size > 0, "worker pool must have at least one thread");
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        source.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::Read)?;
        let waker = source.wakeup_handle();
        let stop = Arc::new(AtomicBool::new(false));
        let completions = Arc::new(Mutex::new(Vec::new()));
        let stats = Arc::clone(&ctx.engine_stats);
        let workers = WorkerPool::start(
            pool_size,
            Arc::clone(&ctx),
            Arc::clone(&completions),
            waker.clone(),
            Arc::clone(&stats),
        )?;
        let mut evloop = EventLoop {
            source,
            listener,
            ctx,
            conns: HashMap::new(),
            next_token: LISTENER_TOKEN + 1,
            completions,
            workers: Some(workers),
            stop: Arc::clone(&stop),
            stats,
        };
        let handle = std::thread::Builder::new()
            .name("swala-event-loop".into())
            .spawn(move || evloop.run())?;
        Ok(EventEngine {
            addr,
            stop,
            waker,
            handle: Some(handle),
        })
    }

    /// The listener's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the loop and the workers; queued requests still get replies.
    /// Unlike the threaded pool's dial-self dance, stopping here is one
    /// flag store plus an eventfd wakeup.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Release);
            self.waker.wake();
            let _ = handle.join();
        }
    }
}

impl Drop for EventEngine {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The loop proper, generic over its readiness source.
struct EventLoop<S: EventSource> {
    source: S,
    listener: TcpListener,
    ctx: Arc<NodeContext>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    completions: Arc<Mutex<Vec<Completion>>>,
    workers: Option<WorkerPool>,
    stop: Arc<AtomicBool>,
    stats: Arc<EngineStats>,
}

impl<S: EventSource> EventLoop<S> {
    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::with_capacity(256);
        loop {
            let _ = self.source.wait(&mut events, READ_TICK);
            self.stats.eventloop_wakeups.fetch_add(1, Ordering::Relaxed);
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            for ev in events.iter().copied() {
                self.dispatch(ev);
            }
            self.drain_completions();
            self.sweep_deadlines();
        }
        self.shutdown_flush();
    }

    fn alloc_token(&mut self) -> u64 {
        let t = self.next_token;
        // u64::MAX is the sources' reserved wakeup token; wrapping past
        // it would take centuries, but stay correct anyway.
        self.next_token = self.next_token.wrapping_add(1).max(LISTENER_TOKEN + 1);
        t
    }

    fn dispatch(&mut self, ev: Event) {
        if ev.token == LISTENER_TOKEN {
            self.accept_ready();
            return;
        }
        let Some(conn) = self.conns.get_mut(&ev.token) else {
            return; // connection already dropped this tick
        };
        if ev.closed && matches!(conn.state, ConnState::Executing) {
            // Peer died while its request runs. We cannot free the slot
            // until the completion arrives, but ERR/HUP are level-
            // triggered and unmaskable — deregister so the loop does not
            // spin on a corpse.
            conn.dead = true;
            let fd = conn.stream.as_raw_fd();
            let _ = self.source.deregister(fd);
            return;
        }
        if ev.readable {
            self.handle_read(ev.token);
        } else if ev.closed {
            match self.conns.get(&ev.token).map(|c| &c.state) {
                Some(ConnState::Writing(_)) => self.handle_write(ev.token),
                Some(_) => self.drop_conn(ev.token),
                None => {}
            }
        }
        if ev.writable {
            self.handle_write(ev.token);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    RequestStats::bump(&self.ctx.stats.connections);
                    // Same socket options as the threaded pool: no Nagle
                    // delay on small keep-alive responses.
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.alloc_token();
                    if self
                        .source
                        .register(stream.as_raw_fd(), token, Interest::Read)
                        .is_err()
                    {
                        continue; // dropping the stream closes it
                    }
                    self.stats.open_connections.add(1);
                    self.stats.idle_connections.add(1);
                    self.conns.insert(
                        token,
                        Conn::new(stream, peer.to_string(), Instant::now() + KEEP_ALIVE_IDLE),
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // EMFILE and friends: yield this tick; readiness stays
                // level-triggered, so we retry next wakeup.
                Err(_) => break,
            }
        }
    }

    /// Pull whatever the socket has, then try to parse a request.
    fn handle_read(&mut self, token: u64) {
        let now = Instant::now();
        let (mut eof, got) = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if !matches!(conn.state, ConnState::Idle | ConnState::Reading { .. }) {
                return;
            }
            let mut eof = false;
            let mut got = 0usize;
            let mut tmp = [0u8; 16 * 1024];
            loop {
                match conn.stream.read(&mut tmp) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.buf.extend_from_slice(&tmp[..n]);
                        got += n;
                        if n < tmp.len() {
                            break; // drained; level-triggering re-reports if not
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        eof = true; // reset: same silent close as threaded
                        break;
                    }
                }
            }
            if got > 0 {
                self.stats.conn_buffer_bytes.add(got as u64);
                if conn.is_idle() {
                    // The request has begun: idle wait becomes read stall.
                    self.stats.idle_connections.sub(1);
                    conn.state = ConnState::Reading { started: now };
                }
                // Every byte of progress resets the stall clock, exactly
                // like the threaded pool's per-request read timeout.
                conn.deadline = Some(now + KEEP_ALIVE_IDLE);
            }
            (eof, got)
        };
        if got > 0 {
            // A complete request supersedes a trailing EOF: serve it, and
            // let the next idle-read observe the close (threaded parity —
            // its parser returns the request before seeing EOF).
            if self.try_parse(token) {
                eof = false;
            }
        }
        if eof {
            self.drop_conn(token);
        }
    }

    /// Attempt to parse a buffered request; returns true if one was
    /// dispatched to the workers (or an error reply was started).
    fn try_parse(&mut self, token: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else {
            return false;
        };
        let ConnState::Reading { started } = conn.state else {
            return false;
        };
        match try_parse_request(&conn.buf) {
            ParseStatus::Complete { request, consumed } => {
                conn.buf.drain(..consumed);
                self.stats.conn_buffer_bytes.sub(consumed as u64);
                conn.state = ConnState::Executing;
                conn.deadline = None;
                let peer = conn.peer.clone();
                self.sync_interest(token);
                let job = Job {
                    token,
                    req: request,
                    peer,
                    started,
                    parse_end: Instant::now(),
                };
                self.workers
                    .as_ref()
                    .expect("workers live while the loop runs")
                    .submit(job, &self.stats);
                true
            }
            ParseStatus::Partial => false,
            ParseStatus::Error(e) => {
                // Threaded parity: answer if the error maps to a status,
                // then close; otherwise just close.
                self.stats.conn_buffer_bytes.sub(conn.buf.len() as u64);
                conn.buf.clear();
                match e.response_status() {
                    Some(status) => {
                        let mut resp = Response::error(status);
                        resp.set_keep_alive(false);
                        resp.set_server(&self.ctx.server_name);
                        self.start_write(token, WriteJob::new(resp, true, false, None));
                    }
                    None => self.drop_conn(token),
                }
                true
            }
        }
    }

    /// Begin (or resume) writing; tries inline first so a ready socket
    /// never waits a loop tick.
    fn start_write(&mut self, token: u64, job: WriteJob) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.state = ConnState::Writing(Box::new(job));
            conn.deadline = None;
            self.handle_write(token);
        }
    }

    fn handle_write(&mut self, token: u64) {
        let progress = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let ConnState::Writing(job) = &mut conn.state else {
                return;
            };
            job.advance(&mut conn.stream)
        };
        match progress {
            WriteProgress::Done => self.finish_write(token, false),
            WriteProgress::Pending => self.sync_interest(token),
            WriteProgress::Failed => self.finish_write(token, true),
        }
    }

    /// The response is fully written (or undeliverable): record the
    /// ResponseWrite span, finish the trace, write the access-log line,
    /// then keep the connection alive or close it.
    fn finish_write(&mut self, token: u64, failed: bool) {
        let (job, keep, peer) = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            // Placeholder must not be Idle: drop_conn balances the idle
            // gauge off the state, and this connection was never parked.
            let job = match std::mem::replace(&mut conn.state, ConnState::Executing) {
                ConnState::Writing(job) => job,
                other => {
                    conn.state = other;
                    return;
                }
            };
            let keep = job.keep && !failed && !conn.dead;
            (job, keep, conn.peer.clone())
        };
        self.record_finish(&peer, *job);
        if !keep {
            self.drop_conn(token);
            return;
        }
        let now = Instant::now();
        let has_pipelined = {
            let conn = self.conns.get_mut(&token).expect("conn checked above");
            if conn.buf.is_empty() {
                conn.state = ConnState::Idle;
                // Release the request buffer's capacity: a parked
                // keep-alive connection holds no heap.
                conn.buf = Vec::new();
                conn.deadline = Some(now + KEEP_ALIVE_IDLE);
                self.stats.idle_connections.add(1);
                false
            } else {
                conn.state = ConnState::Reading { started: now };
                conn.deadline = Some(now + KEEP_ALIVE_IDLE);
                true
            }
        };
        self.sync_interest(token);
        if has_pipelined {
            self.try_parse(token);
        }
    }

    /// Post-write bookkeeping, identical in order and content to the
    /// threaded pool: span, telemetry finish, access log (with trace
    /// suffix when telemetry produced a summary). 408s and parse-error
    /// replies carry no `FinishMeta` and skip all of it, as threaded does.
    fn record_finish(&self, peer: &str, mut job: WriteJob) {
        if let Some(FinishMeta { req, mut trace }) = job.finish.take() {
            trace.record_span(Stage::ResponseWrite, job.started, Instant::now());
            let summary = self.ctx.telemetry.finish(trace);
            if let Some(log) = &self.ctx.access_log {
                log.log_with(peer, &req, &job.resp, summary.as_ref());
            }
        }
    }

    /// Start response writes for every request the workers finished.
    fn drain_completions(&mut self) {
        let done: Vec<Completion> = std::mem::take(&mut *self.completions.lock().unwrap());
        for c in done {
            let Some(conn) = self.conns.get(&c.token) else {
                continue;
            };
            let include_body = response_body_allowed(c.req.method);
            let keep = c.keep && !conn.dead;
            let job = WriteJob::new(
                c.resp,
                include_body,
                keep,
                Some(FinishMeta {
                    req: c.req,
                    trace: c.trace,
                }),
            );
            self.start_write(c.token, job);
        }
    }

    /// Enforce the idle and stall clocks, once per loop tick.
    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.deadline.is_some_and(|d| d <= now))
            .map(|(t, _)| *t)
            .collect();
        for token in expired {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            match conn.state {
                // Idle keep-alive expiry: silent close (threaded parity).
                ConnState::Idle => self.drop_conn(token),
                // Mid-request stall: 408, close. No trace, no log line —
                // the request never finished parsing.
                ConnState::Reading { .. } => {
                    self.stats.conn_buffer_bytes.sub(conn.buf.len() as u64);
                    conn.buf.clear();
                    let mut resp = Response::error(StatusCode::REQUEST_TIMEOUT);
                    resp.set_keep_alive(false);
                    resp.set_server(&self.ctx.server_name);
                    self.start_write(token, WriteJob::new(resp, true, false, None));
                }
                // Executing and Writing never carry deadlines.
                _ => {}
            }
        }
    }

    /// Point the source at what the connection's state needs.
    fn sync_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let want = match conn.state {
            ConnState::Idle | ConnState::Reading { .. } => Interest::Read,
            ConnState::Executing => Interest::None,
            ConnState::Writing(_) => Interest::Write,
        };
        if conn.interest != want && !conn.dead {
            conn.interest = want;
            let fd = conn.stream.as_raw_fd();
            let _ = self.source.modify(fd, token, want);
        }
    }

    fn drop_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        if !conn.dead {
            let _ = self.source.deregister(conn.stream.as_raw_fd());
        }
        self.stats.open_connections.sub(1);
        if conn.is_idle() {
            self.stats.idle_connections.sub(1);
        }
        self.stats.conn_buffer_bytes.sub(conn.buf.len() as u64);
        // Dropping `conn` closes the socket.
    }

    /// Orderly shutdown: workers drain their queue (every accepted
    /// request gets a reply), then remaining responses are flushed with
    /// blocking writes before the sockets close.
    fn shutdown_flush(&mut self) {
        if let Some(workers) = self.workers.take() {
            workers.stop();
        }
        self.drain_completions();
        let writing: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| matches!(c.state, ConnState::Writing(_)))
            .map(|(t, _)| *t)
            .collect();
        for token in writing {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            let _ = conn.stream.set_nonblocking(false);
            let job = match std::mem::replace(&mut conn.state, ConnState::Executing) {
                ConnState::Writing(job) => job,
                other => {
                    conn.state = other;
                    continue;
                }
            };
            let mut job = job;
            let _ = job.advance(&mut conn.stream); // blocking: Done or Failed
            let peer = conn.peer.clone();
            self.record_finish(&peer, *job);
            self.drop_conn(token);
        }
        let remaining: Vec<u64> = self.conns.keys().copied().collect();
        for token in remaining {
            self.drop_conn(token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineKind;
    use parking_lot::RwLock;
    use source::FakeSource;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::time::Duration;
    use swala_cache::{CacheManager, CacheManagerConfig, MemStore, NodeId};
    use swala_proto::{
        default_dialer, Broadcaster, FetchPool, HealthConfig, HealthTracker, RetryPolicy,
    };

    /// A minimal single-node context: no docroot, no programs — every
    /// request 404s, which is plenty to exercise the connection machine.
    fn test_ctx() -> Arc<NodeContext> {
        let manager = Arc::new(CacheManager::new(
            CacheManagerConfig {
                num_nodes: 1,
                local: NodeId(0),
                capacity: 16,
                policy: swala_cache::PolicyKind::Lru,
                rules: swala_cache::CacheRules::allow_all(),
                mem_cache_bytes: 0,
                coalesce: false,
                coalesce_wait: Duration::from_secs(1),
                ..Default::default()
            },
            Box::new(MemStore::new()),
        ));
        let telemetry = swala_obs::Telemetry::new(0, 16);
        let stats = Arc::new(RequestStats::new());
        Arc::new(NodeContext {
            node: NodeId(0),
            server_name: "SwalaTest".into(),
            caching_enabled: true,
            fetch_timeout: Duration::from_millis(200),
            docroot: None,
            registry: swala_cgi::ProgramRegistry::new(),
            manager,
            broadcaster: Arc::new(Broadcaster::new(NodeId(0), Vec::new())),
            cache_addrs: RwLock::new(Vec::new()),
            stats,
            telemetry,
            http_port: 0,
            access_log: None,
            dialer: default_dialer(),
            fetch_pool: Arc::new(FetchPool::new(default_dialer(), 1)),
            retry_policy: RetryPolicy {
                max_attempts: 1,
                base_backoff: Duration::from_millis(1),
                jitter_seed: 0,
            },
            health: Arc::new(HealthTracker::new(HealthConfig {
                suspect_after: 1,
                quarantine_after: 3,
                probe_interval: Duration::from_secs(5),
            })),
            engine_stats: EngineStats::new(),
            engine: EngineKind::Event,
            started: std::time::Instant::now(),
            scrape_failures: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        })
    }

    fn read_response(reader: &mut BufReader<TcpStream>) -> (String, Vec<String>) {
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut headers = Vec::new();
        let mut len = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end().to_string();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length: ") {
                len = v.trim().parse().unwrap();
            }
            headers.push(line);
        }
        let mut body = vec![0u8; len];
        std::io::Read::read_exact(reader, &mut body).unwrap();
        (status.trim_end().to_string(), headers)
    }

    /// Drive the full engine loop from a scripted FakeSource: accept,
    /// keep-alive request/response cycles, interest transitions, close.
    #[test]
    fn fake_source_drives_keep_alive_cycle() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let listener_fd = listener.as_raw_fd();
        let ctx = test_ctx();
        let stats = Arc::clone(&ctx.engine_stats);
        let fake = FakeSource::new();
        let driver = fake.clone();
        let engine = EventEngine::start_with_source(listener, ctx, 2, fake).unwrap();

        let client = TcpStream::connect(addr).unwrap();
        driver.push(Event {
            token: LISTENER_TOKEN,
            readable: true,
            writable: false,
            closed: false,
        });
        // Wait for the accept to register the connection (token 1).
        let conn_reg = 'outer: {
            for _ in 0..100 {
                if let Some(op) = driver.ops().iter().find(|(_, t, _)| *t == 1).copied() {
                    break 'outer op;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            panic!("connection never registered");
        };
        assert!(matches!(conn_reg.2, Interest::Read));
        assert_eq!(stats.open_connections.get(), 1);
        assert_eq!(stats.idle_connections.get(), 1);

        let mut writer = client.try_clone().unwrap();
        let mut reader = BufReader::new(client);
        for round in 0..2 {
            writer
                .write_all(b"GET /missing HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
                .unwrap();
            driver.push(Event {
                token: 1,
                readable: true,
                writable: false,
                closed: false,
            });
            let (status, headers) = read_response(&mut reader);
            assert!(status.contains("404"), "round {round}: {status}");
            assert!(
                headers.iter().any(|h| h == "Connection: keep-alive"),
                "round {round}: {headers:?}"
            );
        }
        // Executing switched interest off, then back to Read when idle.
        let ops = driver.ops();
        assert!(
            ops.iter()
                .any(|(_, t, i)| *t == 1 && matches!(i, Interest::None)),
            "no interest-off transition in {ops:?}"
        );
        // The client sees the last response byte before the loop thread
        // re-parks the connection, so poll rather than assert immediately.
        for _ in 0..100 {
            if stats.idle_connections.get() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(stats.idle_connections.get(), 1, "parked between requests");
        assert_eq!(stats.conn_buffer_bytes.get(), 0, "idle holds no buffer");

        // Client closes; the loop observes EOF and frees the slot.
        drop(writer);
        drop(reader);
        driver.push(Event {
            token: 1,
            readable: true,
            writable: false,
            closed: false,
        });
        for _ in 0..100 {
            if stats.open_connections.get() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(stats.open_connections.get(), 0);
        assert_eq!(stats.idle_connections.get(), 0);
        assert!(stats.wakeups() > 0);

        engine.shutdown();
        // The listener deregistration isn't logged; just check the fd was
        // registered at the reserved listener token initially.
        assert!(driver
            .ops()
            .iter()
            .any(|(fd, t, _)| *fd == listener_fd && *t == LISTENER_TOKEN));
    }

    /// Split request delivery: bytes arrive in three fragments, each
    /// signalled separately — the parser must resume, not restart.
    #[test]
    fn fake_source_fragmented_request() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let ctx = test_ctx();
        let fake = FakeSource::new();
        let driver = fake.clone();
        let engine = EventEngine::start_with_source(listener, ctx, 1, fake).unwrap();

        let client = TcpStream::connect(addr).unwrap();
        driver.push(Event {
            token: LISTENER_TOKEN,
            readable: true,
            writable: false,
            closed: false,
        });
        let mut writer = client.try_clone().unwrap();
        let mut reader = BufReader::new(client);
        for frag in [&b"GET /miss"[..], b"ing HTTP/1.0\r\nHost: x\r", b"\n\r\n"] {
            std::thread::sleep(Duration::from_millis(20));
            writer.write_all(frag).unwrap();
            driver.push(Event {
                token: 1,
                readable: true,
                writable: false,
                closed: false,
            });
        }
        let (status, _) = read_response(&mut reader);
        assert!(status.contains("404"), "{status}");
        engine.shutdown();
    }
}
