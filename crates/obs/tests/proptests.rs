//! Property tests for the telemetry layer:
//!
//! * Prometheus exposition output parses back — every rendered counter,
//!   gauge and histogram sample survives a render → parse round-trip
//!   with its name, labels and value intact;
//! * histogram merge is exact: recording two value streams into two
//!   histograms and merging the snapshots equals recording both streams
//!   into one histogram (the basis of cluster-level aggregation);
//! * quantile estimates never undershoot the true quantile and stay
//!   within the log-linear error bound.

use proptest::prelude::*;
use std::sync::Arc;
use swala_obs::{parse_exposition, Histogram, MetricsRegistry};

fn value_strategy() -> impl Strategy<Value = u64> {
    // Mix small exact values, mid-range, and huge clamped ones.
    prop_oneof![
        4 => 0u64..64,
        4 => 0u64..100_000,
        1 => any::<u64>(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exposition_roundtrips(
        counters in proptest::collection::vec(("[a-z][a-z0-9_]{0,12}", any::<u64>()), 0..6),
        gauges in proptest::collection::vec(("[a-z][a-z0-9_]{0,12}", any::<i64>()), 0..4),
        label_value in "[ -~]{0,12}",
        hist_values in proptest::collection::vec(value_strategy(), 0..50),
    ) {
        let reg = MetricsRegistry::new();
        let mut expected: Vec<(String, u64)> = Vec::new();
        for (i, (name, v)) in counters.iter().enumerate() {
            let name = format!("swala_c{i}_{name}");
            let v = *v;
            reg.register_counter(&name, "a counter", move || v);
            expected.push((name, v));
        }
        for (i, (name, v)) in gauges.iter().enumerate() {
            let name = format!("swala_g{i}_{name}");
            let g = reg.gauge(&name, "a gauge");
            g.set(*v);
        }
        let h = reg.histogram_labeled("swala_h_us", "a histogram", "outcome", &label_value);
        for v in &hist_values {
            h.record(*v);
        }

        let text = reg.render();
        let samples = parse_exposition(&text).expect("render output must parse");

        // Every counter comes back with its exact value (u64 → f64 is
        // lossy above 2^53; compare through the same cast).
        for (name, v) in &expected {
            let got = samples.iter().find(|s| &s.name == name)
                .unwrap_or_else(|| panic!("missing {name}"));
            prop_assert_eq!(got.value, *v as f64);
            prop_assert!(got.labels.is_empty());
        }
        for (i, (name, v)) in gauges.iter().enumerate() {
            let name = format!("swala_g{i}_{name}");
            let got = samples.iter().find(|s| s.name == name).unwrap();
            prop_assert_eq!(got.value, *v as f64);
        }
        // Histogram family: label value round-trips through escaping,
        // +Inf bucket equals _count equals the number recorded.
        let count = samples.iter()
            .find(|s| s.name == "swala_h_us_count")
            .expect("histogram count");
        prop_assert_eq!(count.value, hist_values.len() as f64);
        prop_assert_eq!(&count.labels, &vec![("outcome".to_string(), label_value.clone())]);
        let inf = samples.iter()
            .find(|s| s.name == "swala_h_us_bucket"
                && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf"))
            .expect("+Inf bucket");
        prop_assert_eq!(inf.value, hist_values.len() as f64);
        // Cumulative buckets never decrease.
        let mut last = 0.0;
        for s in samples.iter().filter(|s| s.name == "swala_h_us_bucket") {
            prop_assert!(s.value >= last, "bucket counts must be cumulative");
            last = s.value;
        }
    }

    /// Exotic label values — quotes, backslashes, embedded newlines —
    /// and newline-ridden help text must survive render → parse with
    /// the label value byte-identical (the cluster exposition reuses
    /// the same escaping for every federated sample).
    #[test]
    fn exotic_labels_and_help_roundtrip(
        // ` -~` covers all printable ASCII incl. `"` and `\`; the class
        // also holds a literal newline (embedded via the Rust escape).
        label_value in "[ -~\n]{0,24}",
        help in "[ -~\n]{0,40}",
        hist_values in proptest::collection::vec(value_strategy(), 0..30),
        counter_value in any::<u64>(),
    ) {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_labeled("swala_exotic_us", &help, "outcome", &label_value);
        for v in &hist_values {
            h.record(*v);
        }
        let v = counter_value;
        reg.register_counter_labeled(
            "swala_exotic_total",
            &help,
            "outcome",
            &label_value,
            move || v,
        );

        let text = reg.render();
        let samples = parse_exposition(&text).expect("exotic labels must still parse");

        let expected_label = vec![("outcome".to_string(), label_value.clone())];
        let counter = samples.iter().find(|s| s.name == "swala_exotic_total")
            .expect("labeled counter");
        prop_assert_eq!(&counter.labels, &expected_label);
        prop_assert_eq!(counter.value, counter_value as f64);
        let count = samples.iter().find(|s| s.name == "swala_exotic_us_count")
            .expect("labeled histogram count");
        prop_assert_eq!(&count.labels, &expected_label);
        prop_assert_eq!(count.value, hist_values.len() as f64);
        // Histogram buckets carry the label too, next to their `le`.
        for s in samples.iter().filter(|s| s.name == "swala_exotic_us_bucket") {
            prop_assert!(
                s.labels.iter().any(|(k, v)| k == "outcome" && *v == label_value),
                "bucket lost its label: {:?}", s.labels
            );
        }
    }

    #[test]
    fn merge_equals_single_histogram(
        left in proptest::collection::vec(value_strategy(), 0..200),
        right in proptest::collection::vec(value_strategy(), 0..200),
    ) {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in &left {
            a.record(*v);
            all.record(*v);
        }
        for v in &right {
            b.record(*v);
            all.record(*v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let single = all.snapshot();
        prop_assert_eq!(&merged, &single);
        // And quantiles (a derived view) agree too.
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), single.quantile(q));
        }
    }

    #[test]
    fn quantiles_respect_error_bound(
        values in proptest::collection::vec(1u64..1_000_000, 1..300),
        q in 0.0f64..1.0,
    ) {
        let mut values = values;
        let h = Histogram::new();
        for v in &values {
            h.record(*v);
        }
        let est = h.snapshot().quantile(q);
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
        let truth = values[rank.min(values.len() - 1)];
        // Estimate is the bucket's inclusive upper bound: never below
        // the true quantile, and at most one sub-bucket (12.5%) above.
        prop_assert!(est >= truth, "estimate {est} below true {truth}");
        prop_assert!(
            est as f64 <= truth as f64 * (1.0 + 1.0 / swala_obs::SUB as f64) + 1.0,
            "estimate {est} too far above true {truth}"
        );
    }

    #[test]
    fn concurrent_histogram_recording_is_lossless(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(value_strategy(), 0..50), 1..4),
    ) {
        let h = Arc::new(Histogram::new());
        let total: usize = per_thread.iter().map(Vec::len).sum();
        let handles: Vec<_> = per_thread.into_iter().map(|vals| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || for v in vals { h.record(v); })
        }).collect();
        for j in handles {
            j.join().unwrap();
        }
        prop_assert_eq!(h.snapshot().count, total as u64);
    }
}
