//! Metrics-exposition gate: a live two-node cluster must publish a
//! well-formed `/swala-metrics` page whose histograms agree with its
//! counters.
//!
//! This is the telemetry layer's end-to-end self-check, run by
//! `scripts/check.sh`:
//!
//! 1. drive a known traffic mix (misses, warm local hits, remote hits)
//!    through a two-node pseudo-cluster;
//! 2. scrape each node's `/swala-metrics` over plain HTTP;
//! 3. fail on malformed exposition (the parser is strict) or on the
//!    count twin breaking: summed `swala_request_duration_microseconds`
//!    histogram counts over the HTTP-facing outcomes must equal
//!    `swala_http_requests` minus the one scrape in flight. Owner-serve
//!    spans are excluded — they are recorded by the cache daemon, not
//!    the HTTP layer.

use crate::report::TableReport;
use std::time::{Duration, Instant};
use swala::HttpClient;
use swala_cluster::{ClusterConfig, SwalaCluster};
use swala_obs::{parse_exposition, Outcome, Sample};

const DURATION_COUNT: &str = "swala_request_duration_microseconds_count";

/// Sum of the duration-histogram counts over HTTP-facing outcomes.
fn http_facing_hist_total(samples: &[Sample]) -> f64 {
    samples
        .iter()
        .filter(|s| {
            s.name == DURATION_COUNT
                && s.labels
                    .iter()
                    .any(|(k, v)| k == "outcome" && v != Outcome::OwnerServe.as_str())
        })
        .map(|s| s.value)
        .sum()
}

fn counter(samples: &[Sample], name: &str) -> f64 {
    samples
        .iter()
        .find(|s| s.name == name && s.labels.is_empty())
        .unwrap_or_else(|| panic!("exposition lacks {name}"))
        .value
}

/// Wait until every finished request's trace has landed in the node's
/// histograms (finish happens just after the response bytes leave).
fn quiesce_histograms(node: &swala::SwalaServer) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let requests = node.request_stats().requests;
        let hist: u64 = Outcome::ALL
            .iter()
            .filter(|o| **o != Outcome::OwnerServe)
            .map(|o| node.telemetry().outcome_snapshot(*o).count)
            .sum();
        if hist == requests {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "histograms never caught up: {hist} != {requests}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

pub fn run() -> TableReport {
    let cluster = SwalaCluster::start(&ClusterConfig {
        nodes: 2,
        ..Default::default()
    })
    .expect("start cluster");

    // Known traffic mix. Node 0: 4 misses then 6 warm local hits.
    let mut c0 = HttpClient::new(cluster.node(0).http_addr());
    for i in 0..4 {
        c0.get(&format!("/cgi-bin/adl?id=g{i}&ms=0")).expect("miss");
    }
    for _ in 0..6 {
        c0.get("/cgi-bin/adl?id=g0&ms=0").expect("local hit");
    }
    // Node 1: 5 remote hits against node 0's entry, plus 2 own misses.
    assert!(cluster.wait_for_directory_convergence(4, Duration::from_secs(10)));
    let mut c1 = HttpClient::new(cluster.node(1).http_addr());
    for _ in 0..5 {
        let r = c1.get("/cgi-bin/adl?id=g1&ms=0").expect("remote hit");
        assert_eq!(r.headers.get("X-Swala-Cache"), Some("remote-hit"));
    }
    for i in 0..2 {
        c1.get(&format!("/cgi-bin/adl?id=n1-{i}&ms=0"))
            .expect("miss");
    }

    let mut report = TableReport::new(
        "metrics",
        "Exposition gate: /swala-metrics parses and histograms match counters",
        &[
            "node",
            "http requests",
            "hist total",
            "owner-serve",
            "samples",
        ],
    );
    for (n, client) in [(0usize, &mut c0), (1usize, &mut c1)] {
        quiesce_histograms(cluster.node(n));
        let resp = client.get("/swala-metrics").expect("scrape");
        assert!(resp.status.is_success(), "scrape failed on node {n}");
        let text = String::from_utf8(resp.body.to_vec()).expect("utf8 exposition");
        let samples = parse_exposition(&text)
            .unwrap_or_else(|e| panic!("malformed exposition on node {n}: {e}\n{text}"));

        let requests = counter(&samples, "swala_http_requests");
        let hist_total = http_facing_hist_total(&samples);
        // The scrape request itself is counted in `requests` but its
        // trace has not finished while the page renders.
        assert_eq!(
            hist_total,
            requests - 1.0,
            "node {n}: histogram count twin broke (requests {requests})\n{text}"
        );
        let owner_serve: f64 = samples
            .iter()
            .filter(|s| {
                s.name == DURATION_COUNT
                    && s.labels
                        .iter()
                        .any(|(k, v)| k == "outcome" && v == Outcome::OwnerServe.as_str())
            })
            .map(|s| s.value)
            .sum();
        report.row(vec![
            format!("node{n}"),
            format!("{requests}"),
            format!("{hist_total}"),
            format!("{owner_serve}"),
            format!("{}", samples.len()),
        ]);
    }
    cluster.shutdown();
    report.note("count twin: non-owner-serve histogram totals == swala_http_requests - 1 (scrape in flight)");
    report
}
