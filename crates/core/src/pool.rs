//! The request-handler thread pool.
//!
//! §4.1: "The request threads in the HTTP module take turns listening on
//! the main port for incoming connections and handling the requests.
//! After receiving a new connection, the request thread is responsible
//! for the request from parsing to completion."
//!
//! That is implemented literally: `pool_size` threads share one
//! `TcpListener` and each blocks in `accept()` in turn (the kernel hands
//! each connection to exactly one accepter). There is no separate
//! dispatcher thread and no queue — the 1998 design, which also happens
//! to avoid a dispatch hop on the critical path.

use crate::handler::{handle_request, response_body_allowed, NodeContext};
use crate::stats::RequestStats;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use swala_http::{read_request, HttpError, Response, StatusCode};
use swala_obs::Stage;

/// A running accept pool.
pub struct RequestPool {
    shutdown: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
    addr: std::net::SocketAddr,
}

impl RequestPool {
    /// Spawn `size` request threads over `listener`.
    pub fn start(
        listener: TcpListener,
        ctx: Arc<NodeContext>,
        size: usize,
    ) -> std::io::Result<RequestPool> {
        assert!(size > 0, "pool must have at least one thread");
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let listener = Arc::new(listener);
        let mut handles = Vec::with_capacity(size);
        for i in 0..size {
            let listener = Arc::clone(&listener);
            let ctx = Arc::clone(&ctx);
            let shutdown = Arc::clone(&shutdown);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("swala-request-{i}"))
                    .spawn(move || request_thread(&listener, &ctx, &shutdown))?,
            );
        }
        Ok(RequestPool {
            shutdown,
            handles,
            addr,
        })
    }

    /// The listener's bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting, wake every thread, and join them.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // One dummy self-connection per thread unblocks all accepts.
        // Deliberate: the threads block *inside* `accept()` with no other
        // wakeup channel, and std's TcpListener has no cancellation — a
        // kernel-level wakeup would need nonblocking sockets and a
        // readiness loop, which is exactly what the event engine is. It
        // uses an eventfd instead (see `event::EventEngine::shutdown`).
        for _ in 0..self.handles.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for RequestPool {
    fn drop(&mut self) {
        if !self.handles.is_empty() {
            self.stop();
        }
    }
}

/// One pool thread: accept, serve the connection to completion, repeat.
fn request_thread(listener: &TcpListener, ctx: &NodeContext, shutdown: &AtomicBool) {
    loop {
        let conn = listener.accept();
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let Ok((stream, peer)) = conn else { continue };
        RequestStats::bump(&ctx.stats.connections);
        serve_connection(stream, &peer.to_string(), ctx, shutdown);
    }
}

/// Idle keep-alive connections are dropped after this long, as 1998
/// servers did, so they cannot pin a pool thread forever. The event
/// engine enforces the same limits from its deadline sweep.
pub(crate) const KEEP_ALIVE_IDLE: Duration = Duration::from_secs(5);

/// Granularity at which an idle pool thread re-checks the shutdown flag
/// (and the event loop's wait tick / deadline-sweep period).
pub(crate) const READ_TICK: Duration = Duration::from_millis(100);

/// Decrements a gauge when dropped, so early returns stay balanced.
struct GaugeGuard<'a>(&'a swala_obs::Gauge);

impl Drop for GaugeGuard<'_> {
    fn drop(&mut self) {
        self.0.sub(1);
    }
}

/// Serve one connection's keep-alive request loop.
fn serve_connection(stream: TcpStream, peer: &str, ctx: &NodeContext, shutdown: &AtomicBool) {
    ctx.engine_stats.open_connections.add(1);
    let _open = GaugeGuard(&ctx.engine_stats.open_connections);
    let _ = stream.set_nodelay(true);
    // Short read timeouts let the thread poll the shutdown flag while the
    // connection idles between keep-alive requests.
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        // Keep-alive idle phase: wait for the request's *first* byte
        // without consuming anything (peek), so a read timeout here can
        // safely restart the wait. Pipelined bytes already buffered from
        // the previous parse skip the wait entirely.
        let mut idle = Duration::ZERO;
        if reader.buffer().is_empty() {
            ctx.engine_stats.idle_connections.add(1);
            let _idle = GaugeGuard(&ctx.engine_stats.idle_connections);
            while reader.buffer().is_empty() {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                match reader.get_ref().peek(&mut [0u8; 1]) {
                    Ok(0) => return, // client closed between requests
                    Ok(_) => break,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        idle += READ_TICK;
                        if idle >= KEEP_ALIVE_IDLE {
                            return;
                        }
                    }
                    Err(_) => return, // reset
                }
            }
        }
        // The request has begun: parse it in one pass. A mid-request
        // timeout now means a stalled client, not idleness — restarting
        // the parse would lose the bytes already consumed into the
        // BufReader, so answer 408 and close instead.
        let _ = reader.get_ref().set_read_timeout(Some(KEEP_ALIVE_IDLE));
        let attempt_start = Instant::now();
        let req = read_request(&mut reader);
        let _ = reader.get_ref().set_read_timeout(Some(READ_TICK));
        let req = match req {
            Ok(r) => r,
            Err(HttpError::ConnectionClosed { .. }) => return,
            Err(HttpError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                let mut resp = Response::error(StatusCode::REQUEST_TIMEOUT);
                resp.set_keep_alive(false);
                resp.set_server(&ctx.server_name);
                let _ = resp.write_to(&mut writer, true);
                return;
            }
            Err(HttpError::Io(_)) => return, // reset
            Err(e) => {
                // Parse error: answer if possible, then close.
                if let Some(status) = e.response_status() {
                    let mut resp = Response::error(status);
                    resp.set_keep_alive(false);
                    resp.set_server(&ctx.server_name);
                    let _ = resp.write_to(&mut writer, true);
                }
                return;
            }
        };
        let keep = req.keep_alive();
        let parse_end = Instant::now();
        let mut trace = ctx
            .telemetry
            .begin_trace(&req.target.cache_key_string(), attempt_start);
        trace.record_span(Stage::Parse, attempt_start, parse_end);
        let mut resp = handle_request(ctx, &req, peer, &mut trace);
        resp.version = req.version;
        resp.set_keep_alive(keep);
        let t0 = trace.start_span();
        let written = resp.write_to(&mut writer, response_body_allowed(req.method));
        trace.end_span(Stage::ResponseWrite, t0);
        let summary = ctx.telemetry.finish(trace);
        if let Some(log) = &ctx.access_log {
            log.log_with(peer, &req, &resp, summary.as_ref());
        }
        if written.is_err() || !keep {
            return;
        }
    }
}
