//! Directory organisation — replicated broadcast vs partitioned ring.
//!
//! The paper's directory is fully replicated: every insert/delete is
//! broadcast to all N−1 peers, so directory-update traffic grows as
//! O(N) per cache write — the broadcast wall. The partitioned variant
//! assigns each key a *home* node on a consistent-hash ring and sends
//! exactly one point-to-point update there (zero when the writer is the
//! home), trading a per-miss home lookup for O(1) update cost.
//!
//! This experiment runs a write-heavy phase (unique cacheable requests
//! sprayed round-robin) followed by a read phase (every key re-read from
//! a non-owner) against live clusters of 2/4/8(/16) nodes in both modes,
//! and records:
//!
//! * directory-update messages per insert (gate: N−1 replicated, ≤1
//!   partitioned);
//! * total directory wire bytes from the per-link payload counters
//!   (gate: ≥4× fewer partitioned at N=8);
//! * client-side local-hit and remote-hit (miss-resolution) latency
//!   quantiles — the partitioned remote path pays one extra round-trip
//!   to the home, which must not blow up the hit path.
//!
//! Everything is written to `BENCH_directory.json` for CI's smoke gate.

use crate::report::TableReport;
use crate::scale;
use crate::servers::custom_cluster;
use std::time::{Duration, Instant};
use swala::{HttpClient, ServerOptions, SwalaServer};
use swala_cache::DirectoryKind;
use swala_cgi::{ProgramRegistry, SimulatedProgram, WorkKind};

fn registry() -> ProgramRegistry {
    let mut r = ProgramRegistry::new();
    r.register(std::sync::Arc::new(SimulatedProgram::trace_driven(
        "adl",
        WorkKind::Sleep,
    )));
    r
}

/// Latency quantiles in microseconds from raw samples.
struct Quantiles {
    p50: u64,
    p99: u64,
}

fn quantiles(mut samples: Vec<u64>) -> Quantiles {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    let at = |q: f64| samples[((samples.len() as f64 * q) as usize).min(samples.len() - 1)];
    Quantiles {
        p50: at(0.50),
        p99: at(0.99),
    }
}

/// One (mode, cluster size) measurement.
struct ModeRun {
    directory: DirectoryKind,
    nodes: usize,
    inserts: u64,
    /// Directory-update messages put on the wire (replicated: notices ×
    /// fan-out; partitioned: point-to-point `DirUpdate`s).
    update_msgs: u64,
    /// Payload bytes written on all peer links (directory traffic).
    wire_bytes: u64,
    local: Quantiles,
    remote: Quantiles,
}

impl ModeRun {
    fn updates_per_insert(&self) -> f64 {
        self.update_msgs as f64 / self.inserts as f64
    }
}

/// Poll until every write is visible where reads will look for it:
/// replicated wants the full directory on every replica; partitioned
/// wants every owned entry registered at its ring home.
fn await_convergence(servers: &[SwalaServer], directory: DirectoryKind, expected: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let done = match directory {
            DirectoryKind::Replicated => servers
                .iter()
                .all(|s| s.manager().directory().total_len() == expected),
            DirectoryKind::Partitioned => {
                let total: usize = servers
                    .iter()
                    .map(|s| {
                        let m = s.manager();
                        m.directory().len(m.local_node())
                    })
                    .sum();
                total == expected
                    && servers.iter().all(|s| {
                        let m = s.manager();
                        m.directory().snapshot(m.local_node()).iter().all(|e| {
                            let home = m.home_node(&e.key).expect("partitioned ring");
                            servers[home.index()]
                                .manager()
                                .directory()
                                .get(e.owner, &e.key)
                                .is_some()
                        })
                    })
            }
        };
        if done {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "directory did not converge ({directory:?}, {expected} entries)"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn run_mode(directory: DirectoryKind, nodes: usize, inserts: usize) -> ModeRun {
    let servers = custom_cluster(
        nodes,
        |_| ServerOptions {
            pool_size: 2,
            sync_on_join: false,
            directory,
            ..Default::default()
        },
        |_| registry(),
    )
    .expect("start cluster");
    let mut clients: Vec<HttpClient> = servers
        .iter()
        .map(|s| HttpClient::new(s.http_addr()))
        .collect();

    // Write-heavy phase: unique keys, round-robin over nodes.
    for i in 0..inserts {
        let resp = clients[i % nodes]
            .get(&format!("/cgi-bin/adl?id=dir{i}&ms=0"))
            .expect("insert request");
        assert!(resp.status.is_success());
    }
    for s in &servers {
        assert!(s.flush_broadcasts(Duration::from_secs(10)));
    }
    await_convergence(&servers, directory, inserts);

    // Capture directory-traffic counters before the read phase so remote
    // fetches and home lookups don't muddy the update-cost numbers.
    let update_msgs: u64 = servers
        .iter()
        .map(|s| {
            let stats = s.cache_stats();
            match directory {
                DirectoryKind::Replicated => stats.broadcasts_sent * (nodes as u64 - 1),
                DirectoryKind::Partitioned => stats.dir_updates_sent,
            }
        })
        .sum();
    let wire_bytes: u64 = servers
        .iter()
        .flat_map(|s| s.broadcast_link_stats())
        .map(|l| l.sent_bytes)
        .sum();

    // Read phase 1 — local hits: each key from the node that executed it.
    let mut local_us = Vec::with_capacity(inserts);
    for i in 0..inserts {
        let t0 = Instant::now();
        let resp = clients[i % nodes]
            .get(&format!("/cgi-bin/adl?id=dir{i}&ms=0"))
            .expect("local read");
        assert!(resp.status.is_success());
        local_us.push(t0.elapsed().as_micros() as u64);
    }

    // Read phase 2 — remote hits (miss resolution): each key from a
    // different node. Replicated resolves from the local directory
    // replica; partitioned asks the key's home first.
    let mut remote_us = Vec::with_capacity(inserts);
    for i in 0..inserts {
        let t0 = Instant::now();
        let resp = clients[(i + 1) % nodes]
            .get(&format!("/cgi-bin/adl?id=dir{i}&ms=0"))
            .expect("remote read");
        remote_us.push(t0.elapsed().as_micros() as u64);
        assert_eq!(
            resp.headers.get("X-Swala-Cache"),
            Some("remote-hit"),
            "{directory:?} {nodes} nodes, key dir{i}"
        );
    }

    drop(clients);
    for s in servers {
        s.shutdown();
    }
    ModeRun {
        directory,
        nodes,
        inserts: inserts as u64,
        update_msgs,
        wire_bytes,
        local: quantiles(local_us),
        remote: quantiles(remote_us),
    }
}

pub fn run() -> TableReport {
    let quick = scale::quick();
    let inserts = if quick { 60 } else { 200 };
    let sizes: &[usize] = if quick { &[2, 4, 8] } else { &[2, 4, 8, 16] };

    let mut report = TableReport::new(
        "directory",
        "Directory update cost: replicated broadcast vs partitioned ring",
        &[
            "directory",
            "nodes",
            "updates/insert",
            "wire bytes",
            "local p50/p99 us",
            "remote p50/p99 us",
        ],
    );

    let mut runs: Vec<ModeRun> = Vec::new();
    for &nodes in sizes {
        for directory in [DirectoryKind::Replicated, DirectoryKind::Partitioned] {
            let r = run_mode(directory, nodes, inserts);
            report.row(vec![
                r.directory.as_str().into(),
                r.nodes.to_string(),
                format!("{:.2}", r.updates_per_insert()),
                r.wire_bytes.to_string(),
                format!("{}/{}", r.local.p50, r.local.p99),
                format!("{}/{}", r.remote.p50, r.remote.p99),
            ]);
            runs.push(r);
        }
    }

    // Update-cost gates. These are exact counters, not timings: the
    // write phase performs `inserts` inserts and nothing else announces.
    for r in &runs {
        match r.directory {
            DirectoryKind::Replicated => assert_eq!(
                r.update_msgs,
                r.inserts * (r.nodes as u64 - 1),
                "replicated must pay N-1 messages per insert at {} nodes",
                r.nodes
            ),
            DirectoryKind::Partitioned => assert!(
                r.update_msgs <= r.inserts,
                "partitioned sent {} updates for {} inserts at {} nodes",
                r.update_msgs,
                r.inserts,
                r.nodes
            ),
        }
    }
    let at = |directory: DirectoryKind, nodes: usize| {
        runs.iter()
            .find(|r| r.directory == directory && r.nodes == nodes)
            .expect("run exists")
    };
    let repl8 = at(DirectoryKind::Replicated, 8);
    let part8 = at(DirectoryKind::Partitioned, 8);
    assert!(
        repl8.wire_bytes >= 4 * part8.wire_bytes,
        "at 8 nodes partitioned must cut directory wire bytes >=4x \
         (replicated {} vs partitioned {})",
        repl8.wire_bytes,
        part8.wire_bytes
    );
    report.note(format!(
        "N=8 write-heavy: updates/insert {} -> {:.2}, wire bytes {} -> {} ({:.1}x fewer)",
        repl8.updates_per_insert(),
        part8.updates_per_insert(),
        repl8.wire_bytes,
        part8.wire_bytes,
        repl8.wire_bytes as f64 / part8.wire_bytes as f64,
    ));
    report.note(format!(
        "N=8 remote-hit (miss resolution) p99: replicated {} us, partitioned {} us ({:+.1}%) \
         — partitioned pays one home-lookup round-trip",
        repl8.remote.p99,
        part8.remote.p99,
        (part8.remote.p99 as f64 - repl8.remote.p99 as f64) / repl8.remote.p99 as f64 * 100.0,
    ));
    report.note("local-hit path touches no directory traffic in either mode");

    let runs_json: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"directory\": \"{}\", \"nodes\": {}, \"inserts\": {}, \
                 \"update_msgs\": {}, \"updates_per_insert\": {:.4}, \"wire_bytes\": {}, \
                 \"local_hit_us\": {{\"p50\": {}, \"p99\": {}}}, \
                 \"remote_hit_us\": {{\"p50\": {}, \"p99\": {}}}}}",
                r.directory.as_str(),
                r.nodes,
                r.inserts,
                r.update_msgs,
                r.updates_per_insert(),
                r.wire_bytes,
                r.local.p50,
                r.local.p99,
                r.remote.p50,
                r.remote.p99,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"directory\",\n  \"quick\": {quick},\n  \
         \"inserts\": {inserts},\n  \"runs\": [\n{}\n  ],\n  \
         \"gate_n8\": {{\"replicated_wire_bytes\": {}, \"partitioned_wire_bytes\": {}, \
         \"byte_ratio\": {:.2}, \"partitioned_updates_per_insert\": {:.4}, \
         \"remote_p99_us\": {{\"replicated\": {}, \"partitioned\": {}}}}}\n}}\n",
        runs_json.join(",\n"),
        repl8.wire_bytes,
        part8.wire_bytes,
        repl8.wire_bytes as f64 / part8.wire_bytes as f64,
        part8.updates_per_insert(),
        repl8.remote.p99,
        part8.remote.p99,
    );
    std::fs::write("BENCH_directory.json", &json).expect("write BENCH_directory.json");
    report.note("full results written to BENCH_directory.json");
    report
}
