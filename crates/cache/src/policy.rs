//! Replacement policies.
//!
//! §3 of the paper: "More advanced replacement methods can alleviate some
//! of the problem, by keeping the most important requests (in terms of
//! execution time, access frequency, time of access, size etc.) in the
//! cache. For a discussion of the five replacement methods implemented in
//! Swala, we refer the reader to \[10\]." The companion technical report's
//! five dimensions map to the five policies implemented here:
//!
//! | Policy | Evicts first | Intuition |
//! |--------|--------------|-----------|
//! | `Lru`  | least recently used | time of access |
//! | `Lfu`  | least frequently used | access frequency |
//! | `Size` | largest body | size (keep many small results) |
//! | `Cost` | cheapest to recompute | execution time |
//! | `GreedyDualSize` | lowest inflated cost/size credit | all of the above, à la Cao & Irani \[5\] |
//!
//! Policies are deliberately *stateful values* (GreedyDual-Size carries
//! its inflation value `L`) operated under the same lock as the table they
//! manage, so decisions are deterministic and reproducible in the
//! simulator.

use crate::entry::EntryMeta;
use crate::key::CacheKey;
use std::fmt;
use std::str::FromStr;

/// Which replacement algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    Lru,
    Lfu,
    Size,
    Cost,
    GreedyDualSize,
}

impl PolicyKind {
    /// All five, for sweeps and ablation benches.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::Lru,
        PolicyKind::Lfu,
        PolicyKind::Size,
        PolicyKind::Cost,
        PolicyKind::GreedyDualSize,
    ];

    pub fn as_str(&self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Lfu => "lfu",
            PolicyKind::Size => "size",
            PolicyKind::Cost => "cost",
            PolicyKind::GreedyDualSize => "gds",
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "lru" => Ok(PolicyKind::Lru),
            "lfu" => Ok(PolicyKind::Lfu),
            "size" => Ok(PolicyKind::Size),
            "cost" => Ok(PolicyKind::Cost),
            "gds" | "greedydual" | "greedydualsize" => Ok(PolicyKind::GreedyDualSize),
            other => Err(format!("unknown replacement policy: {other:?}")),
        }
    }
}

/// A replacement policy instance (kind + any running state).
#[derive(Debug, Clone)]
pub struct Policy {
    kind: PolicyKind,
    /// GreedyDual-Size inflation value: the credit of the last victim.
    gds_l: f64,
}

impl Policy {
    pub fn new(kind: PolicyKind) -> Self {
        Policy { kind, gds_l: 0.0 }
    }

    pub fn kind(&self) -> PolicyKind {
        self.kind
    }

    /// Current GreedyDual-Size inflation value (for inspection/tests).
    pub fn gds_inflation(&self) -> f64 {
        self.gds_l
    }

    /// Hook: entry is being inserted.
    pub fn on_insert(&mut self, entry: &mut EntryMeta) {
        if self.kind == PolicyKind::GreedyDualSize {
            entry.gds_credit = self.gds_l + gds_value(entry);
        }
    }

    /// Hook: entry was hit.
    pub fn on_hit(&mut self, entry: &mut EntryMeta) {
        if self.kind == PolicyKind::GreedyDualSize {
            entry.gds_credit = self.gds_l + gds_value(entry);
        }
    }

    /// Hook: `victim` was evicted by this policy's choice.
    pub fn on_evict(&mut self, victim: &EntryMeta) {
        if self.kind == PolicyKind::GreedyDualSize {
            // Classic GreedyDual aging: raise the floor to the victim's
            // credit so long-resident entries decay relative to new ones.
            self.gds_l = self.gds_l.max(victim.gds_credit);
        }
    }

    /// Choose an eviction victim among `entries`.
    ///
    /// Returns the key with the minimum retention score; ties break
    /// toward the least recently used, then lexicographically smallest
    /// key so the choice is fully deterministic.
    pub fn choose_victim<'a>(
        &self,
        entries: impl Iterator<Item = &'a EntryMeta>,
    ) -> Option<CacheKey> {
        entries
            .map(|e| (self.retention_score(e), e.last_access_seq, &e.key))
            .min_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.1.cmp(&b.1))
                    .then(a.2.cmp(b.2))
            })
            .map(|(_, _, k)| k.clone())
    }

    /// The score this policy retains entries by (higher = keep longer).
    pub fn retention_score(&self, e: &EntryMeta) -> f64 {
        match self.kind {
            PolicyKind::Lru => e.last_access_seq as f64,
            PolicyKind::Lfu => e.hits as f64,
            PolicyKind::Size => -(e.size as f64),
            PolicyKind::Cost => e.exec_micros as f64,
            PolicyKind::GreedyDualSize => e.gds_credit,
        }
    }
}

/// GreedyDual-Size base value: recomputation cost per byte cached.
fn gds_value(e: &EntryMeta) -> f64 {
    e.exec_micros as f64 / (e.size.max(1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use std::time::Duration;

    fn entry(key: &str, size: u64, exec: u64, seq: u64) -> EntryMeta {
        EntryMeta::new(
            CacheKey::new(key),
            NodeId(0),
            size,
            "text/html",
            exec,
            None,
            seq,
        )
    }

    #[test]
    fn kind_parsing() {
        assert_eq!("LRU".parse::<PolicyKind>().unwrap(), PolicyKind::Lru);
        assert_eq!(
            "gds".parse::<PolicyKind>().unwrap(),
            PolicyKind::GreedyDualSize
        );
        assert!("clock".parse::<PolicyKind>().is_err());
        for k in PolicyKind::ALL {
            assert_eq!(k.as_str().parse::<PolicyKind>().unwrap(), k);
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let p = Policy::new(PolicyKind::Lru);
        let mut a = entry("/a", 10, 10, 1);
        let b = entry("/b", 10, 10, 2);
        let mut c = entry("/c", 10, 10, 3);
        a.record_hit(10); // /a becomes most recent
        c.record_hit(5);
        let v = p.choose_victim([&a, &b, &c].into_iter()).unwrap();
        assert_eq!(v.as_str(), "/b");
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let p = Policy::new(PolicyKind::Lfu);
        let mut a = entry("/a", 10, 10, 1);
        let mut b = entry("/b", 10, 10, 2);
        let c = entry("/c", 10, 10, 3);
        a.record_hit(4);
        a.record_hit(5);
        b.record_hit(6);
        let v = p.choose_victim([&a, &b, &c].into_iter()).unwrap();
        assert_eq!(v.as_str(), "/c");
    }

    #[test]
    fn lfu_ties_break_by_recency() {
        let p = Policy::new(PolicyKind::Lfu);
        let a = entry("/a", 10, 10, 5); // 0 hits, later access
        let b = entry("/b", 10, 10, 2); // 0 hits, earlier access
        let v = p.choose_victim([&a, &b].into_iter()).unwrap();
        assert_eq!(v.as_str(), "/b");
    }

    #[test]
    fn size_evicts_largest() {
        let p = Policy::new(PolicyKind::Size);
        let a = entry("/a", 100, 10, 1);
        let b = entry("/b", 5000, 10, 2);
        let c = entry("/c", 700, 10, 3);
        assert_eq!(
            p.choose_victim([&a, &b, &c].into_iter()).unwrap().as_str(),
            "/b"
        );
    }

    #[test]
    fn cost_evicts_cheapest_to_recompute() {
        let p = Policy::new(PolicyKind::Cost);
        let a = entry("/a", 10, 900_000, 1);
        let b = entry("/b", 10, 1_000, 2);
        let c = entry("/c", 10, 50_000, 3);
        assert_eq!(
            p.choose_victim([&a, &b, &c].into_iter()).unwrap().as_str(),
            "/b"
        );
    }

    #[test]
    fn gds_prefers_high_cost_per_byte() {
        let mut p = Policy::new(PolicyKind::GreedyDualSize);
        let mut cheap_big = entry("/cheap-big", 100_000, 1_000, 1);
        let mut dear_small = entry("/dear-small", 100, 1_000_000, 2);
        p.on_insert(&mut cheap_big);
        p.on_insert(&mut dear_small);
        let v = p
            .choose_victim([&cheap_big, &dear_small].into_iter())
            .unwrap();
        assert_eq!(v.as_str(), "/cheap-big");
    }

    #[test]
    fn gds_inflation_rises_on_eviction_and_ages_residents() {
        let mut p = Policy::new(PolicyKind::GreedyDualSize);
        let mut old = entry("/old", 100, 10_000, 1); // credit 100
        p.on_insert(&mut old);
        assert_eq!(old.gds_credit, 100.0);

        let mut v1 = entry("/v1", 100, 5_000, 2); // credit 50
        p.on_insert(&mut v1);
        let victim = p.choose_victim([&old, &v1].into_iter()).unwrap();
        assert_eq!(victim.as_str(), "/v1");
        p.on_evict(&v1);
        assert_eq!(p.gds_inflation(), 50.0);

        // New insertions now start with the inflated floor: a newcomer of
        // equal value ranks above the aged resident on a future hit tie.
        let mut newer = entry("/newer", 100, 6_000, 3);
        p.on_insert(&mut newer);
        assert_eq!(newer.gds_credit, 110.0);
        // A hit refreshes the resident to the current floor.
        p.on_hit(&mut old);
        assert_eq!(old.gds_credit, 150.0);
    }

    #[test]
    fn empty_iterator_has_no_victim() {
        let p = Policy::new(PolicyKind::Lru);
        assert!(p.choose_victim(std::iter::empty()).is_none());
    }

    #[test]
    fn deterministic_tiebreak_by_key() {
        let p = Policy::new(PolicyKind::Lru);
        let a = entry("/b", 10, 10, 1);
        let b = entry("/a", 10, 10, 1);
        assert_eq!(
            p.choose_victim([&a, &b].into_iter()).unwrap().as_str(),
            "/a"
        );
    }

    #[test]
    fn non_gds_policies_keep_zero_credit() {
        let mut p = Policy::new(PolicyKind::Lru);
        let mut e = entry("/a", 10, 10, 1);
        p.on_insert(&mut e);
        p.on_hit(&mut e);
        p.on_evict(&e);
        assert_eq!(e.gds_credit, 0.0);
        assert_eq!(p.gds_inflation(), 0.0);
        // Suppress unused-field path: ttl-bearing entry also fine.
        let _ = EntryMeta::new(
            CacheKey::new("/t"),
            NodeId(0),
            1,
            "t",
            1,
            Some(Duration::from_secs(5)),
            1,
        );
    }
}
