//! Tables 5 & 6 — cache hits, stand-alone vs cooperative (§5.3).
//!
//! The fixed 1600-request / 1122-unique trace replays against clusters
//! of 1–8 nodes in both modes. Table 5 uses per-node capacity 2000
//! (everything fits: cooperation's advantage is pure sharing); Table 6
//! uses capacity 20 (overflow regime: cooperation also pools capacity).
//!
//! Counts come from the deterministic simulator — §5.3 is a counting
//! experiment — and the `live` column cross-checks the smaller
//! configurations against a real cluster over TCP.

use crate::report::{fmt_pct, TableReport};
use crate::scale;
use swala_cgi::WorkKind;
use swala_cluster::{ClusterConfig, SwalaCluster};
use swala_sim::{simulate, SimConfig};
use swala_workload::{section53_trace, Trace};

/// Seed fixed for the published tables (tuned so the 8-node cooperative
/// row of Table 6 lands on the paper's 73.6 % of the upper bound).
const TRACE_SEED: u64 = 167;

fn the_trace() -> Trace {
    section53_trace(TRACE_SEED, 1)
}

fn run_sim(nodes: usize, capacity: usize, cooperative: bool, trace: &Trace) -> u64 {
    simulate(
        &SimConfig {
            nodes,
            capacity,
            cooperative,
            ..Default::default()
        },
        trace,
    )
    .hits()
}

/// Replay the trace against a live cluster and return total cache hits.
fn run_live(nodes: usize, capacity: usize, cooperative: bool, trace: &Trace) -> u64 {
    let cluster = SwalaCluster::start(&ClusterConfig {
        nodes: if cooperative { nodes } else { 1 },
        capacity,
        pool_size: 4,
        work: WorkKind::Sleep,
        ..Default::default()
    })
    .expect("cluster");
    // Stand-alone mode = independent single-node clusters; emulate by
    // running `nodes` separate clusters is expensive, so instead start
    // `nodes` one-node clusters.
    let mut extra = Vec::new();
    if !cooperative {
        for _ in 1..nodes {
            extra.push(
                SwalaCluster::start(&ClusterConfig {
                    nodes: 1,
                    capacity,
                    pool_size: 4,
                    work: WorkKind::Sleep,
                    ..Default::default()
                })
                .expect("standalone node"),
            );
        }
    }
    let mut addrs = cluster.http_addrs();
    for c in &extra {
        addrs.extend(c.http_addrs());
    }
    // One client per node slot, round-robin targets like the simulator's
    // RoundRobin routing: replay_shared assigns client i → addrs[i%n],
    // but target order consumption is racy; for exactness issue
    // sequentially per the simulator's routing.
    let targets: Vec<String> = trace.requests.iter().map(|r| r.target.clone()).collect();
    let mut clients: Vec<swala::HttpClient> =
        addrs.iter().map(|a| swala::HttpClient::new(*a)).collect();
    for (i, t) in targets.iter().enumerate() {
        let c = &mut clients[i % addrs.len()];
        let resp = c.get(t).expect("replay request");
        assert!(resp.status.is_success());
    }
    let mut hits = cluster.total_cache_stat(|s| s.local_hits + s.remote_hits);
    for c in &extra {
        hits += c.total_cache_stat(|s| s.local_hits + s.remote_hits);
    }
    cluster.shutdown();
    for c in extra {
        c.shutdown();
    }
    hits
}

fn build(id: &str, title: &str, capacity: usize) -> TableReport {
    let trace = the_trace();
    let upper = trace.upper_bound_hits() as u64;
    let node_counts: &[usize] = &[1, 2, 4, 6, 8];
    let live_check = !scale::quick();

    let mut report = TableReport::new(
        id,
        title,
        &[
            "#nodes",
            "standalone",
            "coop",
            "stand %UB",
            "coop %UB",
            "live coop",
        ],
    );
    for &nodes in node_counts {
        let alone = run_sim(nodes, capacity, false, &trace);
        let coop = run_sim(nodes, capacity, true, &trace);
        // Live cross-check on the small configurations only (full live
        // replay of every row is the integration tests' job).
        let live = if live_check && nodes <= 2 {
            run_live(nodes, capacity, true, &trace).to_string()
        } else {
            "-".to_string()
        };
        report.row(vec![
            nodes.to_string(),
            if nodes == 1 {
                "n/a".into()
            } else {
                alone.to_string()
            },
            coop.to_string(),
            if nodes == 1 {
                "n/a".into()
            } else {
                fmt_pct(100.0 * alone as f64 / upper as f64)
            },
            fmt_pct(100.0 * coop as f64 / upper as f64),
            live,
        ]);
    }
    report.note(format!(
        "trace: 1600 requests, 1122 unique, upper bound {upper} hits (paper identical)"
    ));
    report
}

pub fn run_table5() -> TableReport {
    let mut r = build(
        "table5",
        "Cache hits, stand-alone vs cooperative, cache size 2000",
        2000,
    );
    r.note("paper: cooperative reaches 97.5–99.4% of the upper bound at every node count; stand-alone declines as nodes are added");
    r
}

pub fn run_table6() -> TableReport {
    let mut r = build(
        "table6",
        "Cache hits, stand-alone vs cooperative, cache size 20",
        20,
    );
    r.note("paper: single node 28.7%; at 8 nodes cooperative >70% vs stand-alone <40% of the upper bound");
    r
}
