//! Cacheability rules — the administrator's configuration surface.
//!
//! §4.1: "Not all CGI requests can or should be cached... Swala uses a
//! configuration file, loaded at startup, to provide the system
//! administrator with a flexible way to control which requests are
//! cache-able."
//!
//! The format is deliberately 1998-plain — one rule per line, first match
//! wins, `#` comments:
//!
//! ```text
//! # pattern            directives
//! nocache /cgi-bin/private/*
//! cache   /cgi-bin/adl*      ttl=300  min_ms=50
//! cache   /cgi-bin/*         min_ms=1000
//! ```
//!
//! * `pattern` is a path-prefix glob: a trailing `*` matches any suffix;
//!   without `*` the match is exact.
//! * `ttl=SECONDS` sets the entry's time-to-live (default: no expiry).
//! * `min_ms=MILLIS` is the paper's execution-time threshold (§3, Table 1
//!   and Figure 2's "execution time is longer than a runtime-defined
//!   limit"): faster results are not worth caching.

use std::time::Duration;

/// Verdict for a request path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheDecision {
    /// Never cache (matched a `nocache` rule or no rule at all).
    Uncacheable,
    /// Cacheable if execution takes at least `min_exec`; lives for `ttl`.
    Cacheable {
        ttl: Option<Duration>,
        min_exec: Duration,
    },
}

impl CacheDecision {
    /// Whether a result with the given execution time should be inserted.
    pub fn should_insert(&self, exec: Duration) -> bool {
        match self {
            CacheDecision::Uncacheable => false,
            CacheDecision::Cacheable { min_exec, .. } => exec >= *min_exec,
        }
    }
}

/// One configuration line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    pub pattern: String,
    pub cacheable: bool,
    pub ttl: Option<Duration>,
    pub min_exec: Duration,
}

impl Rule {
    fn matches(&self, path: &str) -> bool {
        match self.pattern.strip_suffix('*') {
            Some(prefix) => path.starts_with(prefix),
            None => path == self.pattern,
        }
    }
}

/// An ordered rule list; first match wins.
#[derive(Debug, Clone, Default)]
pub struct CacheRules {
    rules: Vec<Rule>,
}

impl CacheRules {
    /// No rules: everything is uncacheable (fail-safe default).
    pub fn deny_all() -> Self {
        CacheRules { rules: Vec::new() }
    }

    /// Cache every dynamic result with no threshold and no expiry —
    /// the configuration the §5.2–5.3 experiments effectively run with.
    pub fn allow_all() -> Self {
        CacheRules {
            rules: vec![Rule {
                pattern: "*".to_string(),
                cacheable: true,
                ttl: None,
                min_exec: Duration::ZERO,
            }],
        }
    }

    /// Programmatic rule-list constructor.
    pub fn from_rules(rules: Vec<Rule>) -> Self {
        CacheRules { rules }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are configured.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Parse the configuration-file format described in the module docs.
    ///
    /// Returns `Err` with a line-numbered message on the first malformed
    /// line — a server must refuse to start on a broken config rather
    /// than silently cache the wrong things.
    pub fn parse(text: &str) -> Result<CacheRules, String> {
        let mut rules = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut tokens = line.split_whitespace();
            let verb = tokens.next().unwrap();
            let cacheable = match verb {
                "cache" => true,
                "nocache" => false,
                other => return Err(format!("line {}: unknown verb {other:?}", lineno + 1)),
            };
            let pattern = tokens
                .next()
                .ok_or_else(|| format!("line {}: missing pattern", lineno + 1))?
                .to_string();
            if !pattern.starts_with('/') && pattern != "*" {
                return Err(format!(
                    "line {}: pattern must start with '/' or be '*'",
                    lineno + 1
                ));
            }
            let mut ttl = None;
            let mut min_exec = Duration::ZERO;
            for tok in tokens {
                if let Some(v) = tok.strip_prefix("ttl=") {
                    let secs: u64 = v
                        .parse()
                        .map_err(|_| format!("line {}: bad ttl {v:?}", lineno + 1))?;
                    ttl = Some(Duration::from_secs(secs));
                } else if let Some(v) = tok.strip_prefix("min_ms=") {
                    let ms: u64 = v
                        .parse()
                        .map_err(|_| format!("line {}: bad min_ms {v:?}", lineno + 1))?;
                    min_exec = Duration::from_millis(ms);
                } else {
                    return Err(format!("line {}: unknown directive {tok:?}", lineno + 1));
                }
            }
            if !cacheable && (ttl.is_some() || min_exec > Duration::ZERO) {
                return Err(format!("line {}: nocache takes no directives", lineno + 1));
            }
            rules.push(Rule {
                pattern,
                cacheable,
                ttl,
                min_exec,
            });
        }
        Ok(CacheRules { rules })
    }

    /// Decide cacheability for `path`. First matching rule wins; no match
    /// means uncacheable.
    pub fn decide(&self, path: &str) -> CacheDecision {
        for rule in &self.rules {
            if rule.matches(path) {
                return if rule.cacheable {
                    CacheDecision::Cacheable {
                        ttl: rule.ttl,
                        min_exec: rule.min_exec,
                    }
                } else {
                    CacheDecision::Uncacheable
                };
            }
        }
        CacheDecision::Uncacheable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# ADL-style configuration
nocache /cgi-bin/private/*
cache   /cgi-bin/adl*      ttl=300  min_ms=50
cache   /cgi-bin/*         min_ms=1000
";

    #[test]
    fn parse_and_first_match_wins() {
        let r = CacheRules::parse(SAMPLE).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(
            r.decide("/cgi-bin/private/secret"),
            CacheDecision::Uncacheable
        );
        assert_eq!(
            r.decide("/cgi-bin/adl?id=1"),
            CacheDecision::Cacheable {
                ttl: Some(Duration::from_secs(300)),
                min_exec: Duration::from_millis(50),
            }
        );
        assert_eq!(
            r.decide("/cgi-bin/other"),
            CacheDecision::Cacheable {
                ttl: None,
                min_exec: Duration::from_millis(1000)
            }
        );
        assert_eq!(r.decide("/static/file.html"), CacheDecision::Uncacheable);
    }

    #[test]
    fn exact_pattern_requires_equality() {
        let r = CacheRules::parse("cache /cgi-bin/map\n").unwrap();
        assert!(matches!(
            r.decide("/cgi-bin/map"),
            CacheDecision::Cacheable { .. }
        ));
        assert_eq!(r.decide("/cgi-bin/mapx"), CacheDecision::Uncacheable);
        assert_eq!(r.decide("/cgi-bin/map/sub"), CacheDecision::Uncacheable);
    }

    #[test]
    fn star_matches_everything() {
        let r = CacheRules::parse("cache *\n").unwrap();
        assert!(matches!(
            r.decide("/anything"),
            CacheDecision::Cacheable { .. }
        ));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let r = CacheRules::parse("\n# full comment\ncache /a # trailing\n\n").unwrap();
        assert_eq!(r.len(), 1);
        assert!(matches!(r.decide("/a"), CacheDecision::Cacheable { .. }));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        assert!(CacheRules::parse("frobnicate /x")
            .unwrap_err()
            .contains("line 1"));
        assert!(CacheRules::parse("cache")
            .unwrap_err()
            .contains("missing pattern"));
        assert!(CacheRules::parse("cache relative/x")
            .unwrap_err()
            .contains("line 1"));
        assert!(CacheRules::parse("cache /x ttl=abc")
            .unwrap_err()
            .contains("bad ttl"));
        assert!(CacheRules::parse("cache /x min_ms=--")
            .unwrap_err()
            .contains("bad min_ms"));
        assert!(CacheRules::parse("cache /x wat=1")
            .unwrap_err()
            .contains("unknown directive"));
        assert!(CacheRules::parse("nocache /x ttl=3")
            .unwrap_err()
            .contains("no directives"));
    }

    #[test]
    fn min_exec_threshold_gates_insert() {
        let d = CacheDecision::Cacheable {
            ttl: None,
            min_exec: Duration::from_millis(100),
        };
        assert!(!d.should_insert(Duration::from_millis(99)));
        assert!(d.should_insert(Duration::from_millis(100)));
        assert!(d.should_insert(Duration::from_secs(5)));
        assert!(!CacheDecision::Uncacheable.should_insert(Duration::from_secs(999)));
    }

    #[test]
    fn deny_and_allow_all() {
        assert_eq!(
            CacheRules::deny_all().decide("/x"),
            CacheDecision::Uncacheable
        );
        assert!(CacheRules::deny_all().is_empty());
        assert!(matches!(
            CacheRules::allow_all().decide("/x"),
            CacheDecision::Cacheable { ttl: None, .. }
        ));
    }
}
