//! HTTP request methods.

use crate::error::HttpError;
use std::fmt;
use std::str::FromStr;

/// The request methods Swala understands.
///
/// The paper's log study filters out `HEAD` and `POST` before replay, but
/// the server itself must still parse them (HEAD is answered without a
/// body, POST is forwarded to CGI programs and is never cached — a POST is
/// by definition a state-changing request).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Method {
    Get,
    Head,
    Post,
}

impl Method {
    /// Canonical token as it appears on the wire.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
            Method::Post => "POST",
        }
    }

    /// Whether responses to this method are ever eligible for caching.
    ///
    /// Only `GET` results are cacheable; `HEAD` carries no body to cache
    /// and `POST` is assumed to have side effects (§4.1: "CGI scripts that
    /// return different results for different users should not be cached" —
    /// POST is the archetype).
    pub fn is_cacheable(&self) -> bool {
        matches!(self, Method::Get)
    }

    /// Whether a response to this method includes a message body.
    pub fn response_has_body(&self) -> bool {
        !matches!(self, Method::Head)
    }
}

impl FromStr for Method {
    type Err = HttpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "GET" => Ok(Method::Get),
            "HEAD" => Ok(Method::Head),
            "POST" => Ok(Method::Post),
            other => Err(HttpError::BadMethod(other.to_string())),
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_known_methods() {
        assert_eq!("GET".parse::<Method>().unwrap(), Method::Get);
        assert_eq!("HEAD".parse::<Method>().unwrap(), Method::Head);
        assert_eq!("POST".parse::<Method>().unwrap(), Method::Post);
    }

    #[test]
    fn rejects_unknown_and_lowercase() {
        assert!("PUT".parse::<Method>().is_err());
        // Methods are case-sensitive per RFC 1945 §5.1.1.
        assert!("get".parse::<Method>().is_err());
        assert!("".parse::<Method>().is_err());
    }

    #[test]
    fn cacheability() {
        assert!(Method::Get.is_cacheable());
        assert!(!Method::Head.is_cacheable());
        assert!(!Method::Post.is_cacheable());
    }

    #[test]
    fn head_has_no_response_body() {
        assert!(!Method::Head.response_has_body());
        assert!(Method::Get.response_has_body());
        assert!(Method::Post.response_has_body());
    }

    #[test]
    fn display_roundtrips() {
        for m in [Method::Get, Method::Head, Method::Post] {
            assert_eq!(m.to_string().parse::<Method>().unwrap(), m);
        }
    }
}
