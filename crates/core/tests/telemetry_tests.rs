//! End-to-end tests for the telemetry layer: the Prometheus exposition
//! endpoint, cross-node trace-id propagation on remote hits, the
//! enriched access log, and the disabled-telemetry degradation mode.

use std::sync::Arc;
use std::time::{Duration, Instant};
use swala::{BoundSwala, HttpClient, ServerOptions, SwalaServer};
use swala_cache::NodeId;
use swala_cgi::{ProgramRegistry, SimulatedProgram, WorkKind};
use swala_obs::{parse_exposition, Outcome};
use swala_proto::FaultInjector;

fn registry() -> ProgramRegistry {
    let mut r = ProgramRegistry::new();
    r.register(Arc::new(SimulatedProgram::trace_driven(
        "adl",
        WorkKind::Sleep,
    )));
    r
}

/// Deterministic replay seed: `SWALA_CHAOS_SEED` if set, 42 otherwise.
fn chaos_seed() -> u64 {
    std::env::var("SWALA_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn two_node_cluster() -> Vec<SwalaServer> {
    // A (rule-free) seeded injector keeps the transport deterministic
    // under SWALA_CHAOS_SEED replay, as the chaos tests do.
    let faults = FaultInjector::seeded(chaos_seed());
    let bounds: Vec<BoundSwala> = (0..2)
        .map(|i| {
            BoundSwala::bind(
                ServerOptions {
                    node: NodeId(i),
                    num_nodes: 2,
                    pool_size: 4,
                    faults: Some(Arc::clone(&faults)),
                    ..Default::default()
                },
                registry(),
            )
            .unwrap()
        })
        .collect();
    let addrs: Vec<_> = bounds.iter().map(|b| Some(b.cache_addr())).collect();
    bounds
        .into_iter()
        .map(|b| b.start(addrs.clone()).unwrap())
        .collect()
}

fn wait_for_remote_entry(server: &SwalaServer, owner: NodeId, n: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.manager().directory().len(owner) < n {
        assert!(Instant::now() < deadline, "directory never converged");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Poll a node's trace ring until a trace with `outcome` appears.
fn wait_for_trace(server: &SwalaServer, outcome: Outcome) -> swala_obs::CompletedTrace {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if let Some(t) = server
            .telemetry()
            .last_traces(32)
            .into_iter()
            .find(|t| t.outcome == outcome)
        {
            return t;
        }
        assert!(
            Instant::now() < deadline,
            "no {} trace recorded",
            outcome.as_str()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn metrics_endpoint_is_valid_exposition_with_consistent_twins() {
    let server = SwalaServer::start_single(
        ServerOptions {
            pool_size: 2,
            ..Default::default()
        },
        registry(),
    )
    .unwrap();
    let mut client = HttpClient::new(server.http_addr());
    for i in 0..4 {
        client.get(&format!("/cgi-bin/adl?id={i}&ms=0")).unwrap();
    }
    for _ in 0..3 {
        client.get("/cgi-bin/adl?id=0&ms=0").unwrap();
    }
    // A trace is finished just after its response bytes leave; wait for
    // the last one to land before scraping.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.telemetry().outcome_snapshot(Outcome::LocalMem).count < 3 {
        assert!(
            Instant::now() < deadline,
            "local-mem histogram never filled"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    let resp = client.get("/swala-metrics").unwrap();
    assert_eq!(
        resp.headers.get("Content-Type"),
        Some("text/plain; version=0.0.4")
    );
    let text = String::from_utf8(resp.body.to_vec()).unwrap();
    let samples = parse_exposition(&text).expect("exposition must parse");

    let value = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .unwrap_or_else(|| panic!("missing sample {name} in:\n{text}"))
            .value
    };
    // 7 dynamic requests processed before the scrape; the scrape itself
    // is in flight, so `requests` counts at least those 7.
    assert!(value("swala_http_requests") >= 7.0);
    assert_eq!(value("swala_http_dynamic"), 7.0);
    assert_eq!(value("swala_cache_inserts"), 4.0);
    assert_eq!(value("swala_cache_local_hits"), 3.0);

    // Histogram twin: the per-outcome duration histograms must agree
    // with the counter view of the same traffic.
    let hist_count: f64 = samples
        .iter()
        .filter(|s| s.name == "swala_request_duration_microseconds_count")
        .map(|s| s.value)
        .sum();
    assert!(
        hist_count >= 7.0,
        "duration histograms saw {hist_count} requests"
    );
    let local_mem: f64 = samples
        .iter()
        .filter(|s| {
            s.name == "swala_request_duration_microseconds_count"
                && s.labels
                    .iter()
                    .any(|(k, v)| k == "outcome" && v == "local-mem")
        })
        .map(|s| s.value)
        .sum();
    assert_eq!(local_mem, 3.0, "warm hits land in the local-mem histogram");
    server.shutdown();
}

#[test]
fn remote_hit_carries_one_trace_id_across_both_nodes() {
    let nodes = two_node_cluster();
    let target = "/cgi-bin/adl?id=77&ms=0";

    // Warm node 0, then hit the same key from node 1 → remote fetch.
    HttpClient::new(nodes[0].http_addr()).get(target).unwrap();
    wait_for_remote_entry(&nodes[1], NodeId(0), 1);
    let resp = HttpClient::new(nodes[1].http_addr()).get(target).unwrap();
    assert_eq!(resp.headers.get("X-Swala-Cache"), Some("remote-hit"));

    // Requester side: the trace ring holds a Remote-outcome trace that
    // names node 0 as the owner. The trace lands in the ring just after
    // the response bytes leave, so poll briefly.
    let remote = wait_for_trace(&nodes[1], Outcome::Remote);
    assert_eq!(remote.owner, Some(0));
    assert!(
        remote.stage_summary().contains("remote-fetch:"),
        "{}",
        remote.stage_summary()
    );
    // Trace ids are node-tagged: node 1 minted this one.
    assert_eq!(remote.id >> 48, 1);

    // Owner side: the fetch daemon adopted the requester's id, so the
    // same 64-bit id appears in node 0's ring with an owner-serve span.
    let serve = wait_for_trace(&nodes[0], Outcome::OwnerServe);
    assert_eq!(
        serve.id, remote.id,
        "owner {:016x} vs requester {:016x}",
        serve.id, remote.id
    );

    // And both `/swala-traces` dumps expose the shared id as hex.
    let hex = format!("{:016x}", remote.id);
    for node in &nodes {
        let body = HttpClient::new(node.http_addr())
            .get("/swala-traces?n=32")
            .unwrap()
            .body;
        let json = String::from_utf8(body.to_vec()).unwrap();
        assert!(json.contains(&hex), "node dump lacks {hex}: {json}");
    }
    for n in nodes {
        n.shutdown();
    }
}

#[test]
fn access_log_lines_carry_trace_suffix() {
    let dir = std::env::temp_dir().join(format!("swala-obs-log-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join("access.log");
    let server = SwalaServer::start_single(
        ServerOptions {
            pool_size: 2,
            access_log: Some(log_path.clone()),
            ..Default::default()
        },
        registry(),
    )
    .unwrap();
    let mut client = HttpClient::new(server.http_addr());
    client.get("/cgi-bin/adl?id=5&ms=0").unwrap();
    client.get("/cgi-bin/adl?id=5&ms=0").unwrap();
    server.shutdown();

    let text = std::fs::read_to_string(&log_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text}");
    assert!(lines[0].contains(" out=miss "), "{}", lines[0]);
    assert!(lines[1].contains(" out=local-mem "), "{}", lines[1]);
    for line in &lines {
        assert!(line.contains(" trace="), "{line}");
        assert!(line.contains(" total_us="), "{line}");
        // The CLF prefix must stay intact ahead of the suffix, so the
        // log-analysis pipeline keeps parsing enriched lines.
        assert!(
            line.contains("\"GET /cgi-bin/adl?id=5&ms=0 HTTP/1.0\" 200 "),
            "{line}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disabled_telemetry_still_scrapes_counters_but_keeps_no_traces() {
    let server = SwalaServer::start_single(
        ServerOptions {
            pool_size: 2,
            obs_enabled: false,
            ..Default::default()
        },
        registry(),
    )
    .unwrap();
    let mut client = HttpClient::new(server.http_addr());
    client.get("/cgi-bin/adl?id=3&ms=0").unwrap();
    client.get("/cgi-bin/adl?id=3&ms=0").unwrap();

    assert!(!server.telemetry().enabled());
    let metrics = client.get("/swala-metrics").unwrap();
    let text = String::from_utf8(metrics.body.to_vec()).unwrap();
    let samples = parse_exposition(&text).unwrap();
    // Counters still work (they cost the same atomics either way)...
    assert!(samples
        .iter()
        .any(|s| s.name == "swala_http_requests" && s.value >= 2.0));
    // ...but no histogram observations and no retained traces.
    let hist: f64 = samples
        .iter()
        .filter(|s| s.name == "swala_request_duration_microseconds_count")
        .map(|s| s.value)
        .sum();
    assert_eq!(hist, 0.0);
    let traces = client.get("/swala-traces").unwrap();
    assert_eq!(
        String::from_utf8(traces.body.to_vec()).unwrap().trim(),
        "[]"
    );
    server.shutdown();
}
