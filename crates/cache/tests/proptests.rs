//! Property-based tests for cache invariants:
//!
//! * capacity is never exceeded, whatever the policy and request stream;
//! * the directory and the store never disagree after any operation mix;
//! * every policy evicts the entry its scoring function says it should;
//! * rules parsing accepts what it printed;
//! * segment-log records round-trip exactly, and truncation or any
//!   single bit flip is always detected (never mis-decoded, never a
//!   panic);
//! * segment-store recovery skips expired entries and survives
//!   arbitrary corruption of the on-disk log.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;
use swala_cache::store::HeaderMeta;
use swala_cache::{
    decode_record, encode_record, CacheKey, CacheManager, CacheManagerConfig, CacheRules, Digest,
    DiskStore, InsertOutcome, LookupResult, MemStore, NodeId, PolicyKind, Record, SegmentConfig,
    SegmentStore, Store,
};

fn policy_strategy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Lru),
        Just(PolicyKind::Lfu),
        Just(PolicyKind::Size),
        Just(PolicyKind::Cost),
        Just(PolicyKind::GreedyDualSize),
    ]
}

/// An operation against the manager, driven by small integers so shrunken
/// counterexamples stay readable.
#[derive(Debug, Clone)]
enum Op {
    Request { id: u8, cost_ms: u16, size: u16 },
    RemoveLocal { id: u8 },
    Purge,
    EvictNode,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u8>(), 1u16..200, 1u16..2048)
            .prop_map(|(id, cost_ms, size)| Op::Request { id, cost_ms, size }),
        1 => any::<u8>().prop_map(|id| Op::RemoveLocal { id }),
        1 => Just(Op::Purge),
        1 => Just(Op::EvictNode),
    ]
}

fn key_for(id: u8) -> CacheKey {
    CacheKey::new(format!("/cgi-bin/adl?id={id}"))
}

// ---- segment-log wire format strategies ----

fn digest_strategy() -> impl Strategy<Value = Digest> {
    proptest::collection::vec(any::<u8>(), 32..33)
        .prop_map(|v| Digest(v.try_into().expect("exactly 32 bytes")))
}

fn meta_strategy() -> impl Strategy<Value = HeaderMeta> {
    (
        "[ -~]{0,24}",
        any::<u64>(),
        proptest::option::of(any::<u64>()),
        any::<u64>(),
    )
        .prop_map(
            |(content_type, exec_micros, expires_unix, created_unix)| HeaderMeta {
                content_type,
                exec_micros,
                expires_unix,
                created_unix,
            },
        )
}

fn record_strategy() -> impl Strategy<Value = Record> {
    prop_oneof![
        (
            any::<u64>(),
            digest_strategy(),
            proptest::collection::vec(any::<u8>(), 0..512)
        )
            .prop_map(|(seq, digest, body)| Record::Body { seq, digest, body }),
        (
            any::<u64>(),
            "[ -~]{1,40}",
            digest_strategy(),
            meta_strategy()
        )
            .prop_map(|(seq, key, digest, meta)| Record::Put {
                seq,
                key: CacheKey::new(key),
                digest,
                meta,
            }),
        (any::<u64>(), "[ -~]{1,40}").prop_map(|(seq, key)| Record::Del {
            seq,
            key: CacheKey::new(key),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn capacity_never_exceeded(
        policy in policy_strategy(),
        capacity in 1usize..20,
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let m = CacheManager::new(
            CacheManagerConfig {
                num_nodes: 1,
                local: NodeId(0),
                capacity,
                policy,
                rules: CacheRules::allow_all(),
                mem_cache_bytes: 1 << 20,
                ..Default::default()
            },
            Box::new(MemStore::new()),
        );
        for op in ops {
            match op {
                Op::Request { id, cost_ms, size } => {
                    let k = key_for(id);
                    match m.lookup(&k, k.as_str()) {
                        LookupResult::Miss { decision, .. } => {
                            let body = vec![b'x'; size as usize];
                            let out = m.complete_execution(
                                &k,
                                &body,
                                "text/html",
                                Duration::from_millis(cost_ms as u64),
                                &decision,
                            ).unwrap();
                            if let InsertOutcome::Inserted { evicted, .. } = out {
                                // Evicted entries must be gone everywhere.
                                for v in evicted {
                                    prop_assert!(m.directory().get(NodeId(0), &v.key).is_none());
                                }
                            }
                        }
                        LookupResult::LocalHit { body, meta, .. } => {
                            prop_assert_eq!(body.len() as u64, meta.size);
                        }
                        LookupResult::RemoteHit { .. } => unreachable!("single node"),
                        LookupResult::Uncacheable => unreachable!("allow_all"),
                        // Sequential ops: every miss completes before the
                        // next lookup, so no flight is ever in progress.
                        LookupResult::CoalesceWait { .. } => unreachable!("sequential ops"),
                    }
                }
                Op::RemoveLocal { id } => { m.remove_local(&key_for(id)); }
                Op::Purge => { m.purge_expired(); }
                // Single node: out-of-range eviction must be a no-op.
                Op::EvictNode => { m.evict_node(NodeId(1)); }
            }
            prop_assert!(m.directory().len(NodeId(0)) <= capacity,
                "directory over capacity: {} > {}", m.directory().len(NodeId(0)), capacity);
        }
    }

    #[test]
    fn directory_and_store_stay_consistent(
        policy in policy_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..150),
    ) {
        let m = CacheManager::new(
            CacheManagerConfig {
                num_nodes: 1,
                local: NodeId(0),
                capacity: 8,
                policy,
                rules: CacheRules::allow_all(),
                mem_cache_bytes: 1 << 20,
                ..Default::default()
            },
            Box::new(MemStore::new()),
        );
        for op in ops {
            if let Op::Request { id, cost_ms, size } = op {
                let k = key_for(id);
                if let LookupResult::Miss { decision, .. } = m.lookup(&k, k.as_str()) {
                    let body = vec![b'y'; size as usize];
                    m.complete_execution(&k, &body, "t",
                        Duration::from_millis(cost_ms as u64), &decision).unwrap();
                }
            } else if let Op::RemoveLocal { id } = op {
                m.remove_local(&key_for(id));
            }
            // Invariant: every directory entry has a readable body of the
            // advertised size.
            for meta in m.local_snapshot() {
                let hit = m.fetch_local_body(&meta.key);
                prop_assert!(hit.is_some(), "directory entry {} has no body", meta.key);
                prop_assert_eq!(hit.unwrap().1.len() as u64, meta.size);
            }
        }
    }

    #[test]
    fn hits_are_byte_identical_to_execution(
        ids in proptest::collection::vec(any::<u8>(), 1..60),
    ) {
        let m = CacheManager::new(
            CacheManagerConfig { capacity: 1000, ..Default::default() },
            Box::new(MemStore::new()),
        );
        let body_of = |id: u8| vec![id; (id as usize % 64) + 1];
        for id in ids {
            let k = key_for(id);
            match m.lookup(&k, k.as_str()) {
                LookupResult::Miss { decision, .. } => {
                    m.complete_execution(&k, &body_of(id), "t",
                        Duration::from_millis(10), &decision).unwrap();
                }
                LookupResult::LocalHit { body, .. } => {
                    prop_assert_eq!(&body[..], &body_of(id)[..]);
                }
                other => prop_assert!(false, "unexpected {other:?}"),
            }
        }
    }

    /// Satellite invariant for the in-memory body tier: after any
    /// interleaving of insert / delete / evict / `evict_node`, every
    /// body the manager serves (memory tier or not) byte-equals what an
    /// independent reader sees on disk, and the tier never holds more
    /// than its byte budget.
    #[test]
    fn mem_tier_coherent_with_disk_store(
        budget in 256usize..4096,
        ops in proptest::collection::vec(op_strategy(), 1..80),
    ) {
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let root = std::env::temp_dir().join(format!(
            "swala-proptest-mem-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = std::fs::remove_dir_all(&root);
        let m = CacheManager::new(
            CacheManagerConfig {
                num_nodes: 2,
                local: NodeId(0),
                capacity: 6,
                policy: PolicyKind::Lru,
                rules: CacheRules::allow_all(),
                mem_cache_bytes: budget,
                ..Default::default()
            },
            // fsync off: this property is about tier/disk coherence, not
            // durability, and 64 cases × 80 ops of syncs add up.
            Box::new(DiskStore::open_with_fsync(&root, false).unwrap()),
        );
        // Second handle on the same directory: reads the actual files,
        // bypassing the manager's memory tier entirely.
        let disk_view = DiskStore::open_with_fsync(&root, false).unwrap();
        for op in ops {
            match op {
                Op::Request { id, cost_ms, size } => {
                    let k = key_for(id);
                    match m.lookup(&k, k.as_str()) {
                        LookupResult::Miss { decision, .. } => {
                            let body = vec![id; (size as usize % 512) + 1];
                            m.complete_execution(&k, &body, "t",
                                Duration::from_millis(cost_ms as u64), &decision).unwrap();
                        }
                        LookupResult::LocalHit { .. } => {}
                        other => prop_assert!(false, "unexpected {other:?}"),
                    }
                }
                Op::RemoveLocal { id } => { m.remove_local(&key_for(id)); }
                Op::Purge => { m.purge_expired(); }
                Op::EvictNode => { m.evict_node(NodeId(1)); }
            }
            prop_assert!(m.mem_bytes() <= budget,
                "tier holds {} bytes over budget {}", m.mem_bytes(), budget);
            for meta in m.local_snapshot() {
                let (_, served) = m.fetch_local_body(&meta.key).unwrap();
                let on_disk = disk_view.get(&meta.key).unwrap();
                prop_assert_eq!(&served[..], &on_disk[..],
                    "tier and disk disagree for {}", meta.key);
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Single-flight invariant: whatever the burst width and body, every
    /// coalesced waiter observes bytes identical to what the leader
    /// inserted — the zero-copy fan-out never serves torn or stale data.
    #[test]
    fn coalesced_waiters_see_leader_bytes(
        waiters in 1usize..8,
        body in proptest::collection::vec(any::<u8>(), 1..2048),
        content_type in "[a-z]{2,10}/[a-z]{2,10}",
    ) {
        use std::sync::Arc;
        let m = Arc::new(CacheManager::new(
            CacheManagerConfig::default(),
            Box::new(MemStore::new()),
        ));
        let k = key_for(7);
        let decision = match m.lookup(&k, k.as_str()) {
            LookupResult::Miss { decision, first_in_flight: true } => decision,
            other => { prop_assert!(false, "unexpected {other:?}"); unreachable!() }
        };
        let mut handles = Vec::new();
        for _ in 0..waiters {
            let waiter = match m.lookup(&k, k.as_str()) {
                LookupResult::CoalesceWait { waiter, .. } => waiter,
                other => { prop_assert!(false, "unexpected {other:?}"); unreachable!() }
            };
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || m.wait_flight(waiter)));
        }
        m.complete_execution(&k, &body, &content_type,
            Duration::from_millis(60), &decision).unwrap();
        for h in handles {
            match h.join().unwrap() {
                swala_cache::FlightWaitOutcome::Served { content_type: ct, body: served } => {
                    prop_assert_eq!(&served[..], &body[..]);
                    prop_assert_eq!(ct, content_type.clone());
                }
                other => prop_assert!(false, "waiter not served: {other:?}"),
            }
        }
        let snap = m.stats().snapshot();
        prop_assert_eq!(snap.coalesce_waits, waiters as u64);
        prop_assert_eq!(snap.coalesce_fallbacks, 0);
    }

    /// Every record survives encode → decode byte-exactly, reports the
    /// right consumed length, and is insensitive to whatever follows it
    /// in the buffer (records are read from a shared segment tail).
    #[test]
    fn segment_records_roundtrip(
        rec in record_strategy(),
        junk in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let encoded = encode_record(&rec);
        let (decoded, consumed) = decode_record(&encoded).expect("clean record decodes");
        prop_assert_eq!(&decoded, &rec);
        prop_assert_eq!(consumed, encoded.len());
        let mut with_tail = encoded.clone();
        with_tail.extend_from_slice(&junk);
        let (decoded, consumed) = decode_record(&with_tail).expect("tail must not matter");
        prop_assert_eq!(&decoded, &rec);
        prop_assert_eq!(consumed, encoded.len());
    }

    /// A torn tail (any strict prefix of a record, as left by a crash
    /// mid-append) never decodes and never panics.
    #[test]
    fn truncated_segment_records_never_decode(
        rec in record_strategy(),
        cut in any::<usize>(),
    ) {
        let encoded = encode_record(&rec);
        let cut = cut % encoded.len();
        prop_assert!(decode_record(&encoded[..cut]).is_none(),
            "prefix of {} of {} bytes decoded", cut, encoded.len());
    }

    /// Any single flipped bit — header, checksum field or payload — is
    /// caught by one of the two CRCs: the record never mis-decodes.
    #[test]
    fn bit_flipped_segment_records_never_decode(
        rec in record_strategy(),
        pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut encoded = encode_record(&rec);
        let pos = pos % encoded.len();
        encoded[pos] ^= 1 << bit;
        prop_assert!(decode_record(&encoded).is_none(),
            "bit {bit} of byte {pos} flipped yet the record decoded");
    }

    /// Warm-restart recovery under fire: after arbitrary single-byte
    /// corruption anywhere in the log, reopening never panics, expired
    /// entries stay dead, and every entry that *is* recovered serves
    /// byte-identical data.
    #[test]
    fn segment_recovery_survives_corruption_and_skips_expired(
        n_live in 1usize..8,
        n_expired in 0usize..4,
        corrupt in proptest::option::of((any::<usize>(), any::<u8>())),
    ) {
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let root = std::env::temp_dir().join(format!(
            "swala-proptest-seg-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = std::fs::remove_dir_all(&root);
        let body_of = |i: usize, tag: &str| format!("body-{tag}-{i}").into_bytes();
        {
            let s = SegmentStore::open_with(
                &root,
                SegmentConfig { fsync: false, ..SegmentConfig::default() },
            ).unwrap();
            let meta = |expires| HeaderMeta {
                content_type: "t".into(),
                exec_micros: 5,
                expires_unix: expires,
                created_unix: 1,
            };
            for i in 0..n_live {
                s.put_described(&key_for(i as u8), &meta(None), &body_of(i, "live")).unwrap();
            }
            for i in 0..n_expired {
                // expires_unix=1 is deep in the past: dead on arrival.
                s.put_described(&key_for(100 + i as u8), &meta(Some(1)), &body_of(i, "exp")).unwrap();
            }
        }
        if let Some((pos, byte)) = corrupt {
            let seg = root.join("seg-00000000.swseg");
            let mut bytes = std::fs::read(&seg).unwrap();
            if !bytes.is_empty() {
                let pos = pos % bytes.len();
                bytes[pos] = byte;
                std::fs::write(&seg, bytes).unwrap();
            }
        }
        // Reopen: must not panic whatever was clobbered.
        let s = SegmentStore::open_with(
            &root,
            SegmentConfig { fsync: false, ..SegmentConfig::default() },
        ).unwrap();
        let recovered = s.recover();
        for e in &recovered {
            prop_assert!(e.expires_unix.is_none(), "expired entry {} resurrected", e.key);
            let i: usize = e.key.as_str().rsplit('=').next().unwrap().parse().unwrap();
            prop_assert_eq!(s.get(&e.key).unwrap(), body_of(i, "live"));
        }
        // Corruption may only ever shrink the recovered set.
        prop_assert!(recovered.len() <= n_live);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn rules_roundtrip_through_text(
        patterns in proptest::collection::vec(("[a-z]{1,8}", any::<bool>(), proptest::option::of(1u64..5000), 0u64..5000), 1..10),
    ) {
        let mut text = String::new();
        for (seg, cacheable, ttl, min_ms) in &patterns {
            if *cacheable {
                text.push_str(&format!("cache /cgi-bin/{seg}*"));
                if let Some(t) = ttl { text.push_str(&format!(" ttl={t}")); }
                if *min_ms > 0 { text.push_str(&format!(" min_ms={min_ms}")); }
            } else {
                text.push_str(&format!("nocache /cgi-bin/{seg}*"));
            }
            text.push('\n');
        }
        let rules = CacheRules::parse(&text).unwrap();
        prop_assert_eq!(rules.len(), patterns.len());
        // First-match-wins: the decision for each pattern's exemplar path
        // equals the decision of the first rule whose prefix matches.
        for (seg, _, _, _) in &patterns {
            let path = format!("/cgi-bin/{seg}");
            let expected = patterns.iter()
                .find(|(s, _, _, _)| seg.starts_with(s.as_str()))
                .map(|(_, cacheable, ttl, min_ms)| (*cacheable, *ttl, *min_ms));
            match (rules.decide(&path), expected) {
                (swala_cache::CacheDecision::Uncacheable, Some((false, _, _))) => {}
                (swala_cache::CacheDecision::Cacheable { ttl, min_exec }, Some((true, exp_ttl, exp_min))) => {
                    prop_assert_eq!(ttl.map(|d| d.as_secs()), exp_ttl);
                    prop_assert_eq!(min_exec.as_millis() as u64, exp_min);
                }
                (got, exp) => prop_assert!(false, "mismatch: {got:?} vs {exp:?}"),
            }
        }
    }
}
