//! Common Log Format access logging.
//!
//! 1998 servers wrote NCSA Common Log Format, and so does Swala:
//!
//! ```text
//! 127.0.0.1 - - [28/Jul/1998:12:00:00 +0000] "GET /cgi-bin/adl?id=1 HTTP/1.0" 200 2048
//! ```
//!
//! Lines are buffered per write and the file is shared by all request
//! threads through a mutex — the bottleneck profile of the original
//! servers, which is fine because a log write is two orders of magnitude
//! cheaper than the dynamic requests Swala exists to serve.

use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use swala_http::date::UtcDateTime;
use swala_http::{Request, Response};

/// A shared, append-only CLF log.
pub struct AccessLog {
    file: Mutex<File>,
}

impl AccessLog {
    /// Open (appending) the log at `path`.
    pub fn open(path: &Path) -> io::Result<AccessLog> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(AccessLog {
            file: Mutex::new(file),
        })
    }

    /// Append one request/response pair.
    pub fn log(&self, peer: &str, req: &Request, resp: &Response) {
        self.log_with(peer, req, resp, None);
    }

    /// Append one request/response pair, with an optional telemetry
    /// suffix spliced in before the newline. The CLF prefix is
    /// unchanged, so existing log parsers (which stop at status+bytes)
    /// keep working.
    pub fn log_with(&self, peer: &str, req: &Request, resp: &Response, suffix: Option<&str>) {
        let mut line = format_clf(peer, req, resp, std::time::SystemTime::now());
        if let Some(s) = suffix {
            line.pop();
            line.push(' ');
            line.push_str(s);
            line.push('\n');
        }
        let mut file = self.file.lock();
        // Logging must never take the server down; drop the line on error.
        let _ = file.write_all(line.as_bytes());
    }
}

/// The telemetry suffix appended to a CLF line when tracing is on:
/// outcome, owning node, trace id (hex, grep-able across nodes),
/// per-stage micros and total.
pub fn trace_suffix(s: &swala_obs::TraceSummary) -> String {
    format!(
        "out={} owner={} trace={:016x} total_us={} stages={}",
        s.outcome.as_str(),
        s.owner.map(|o| o.to_string()).unwrap_or_else(|| "-".into()),
        s.id,
        s.total_us,
        if s.stages.is_empty() { "-" } else { &s.stages },
    )
}

/// Render one CLF line (without writing it) — separated for testing.
pub fn format_clf(
    peer: &str,
    req: &Request,
    resp: &Response,
    now: std::time::SystemTime,
) -> String {
    let host = peer.rsplit_once(':').map(|(h, _)| h).unwrap_or(peer);
    let t = UtcDateTime::from_system_time(now);
    const MONTHS: [&str; 12] = [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    ];
    format!(
        "{host} - - [{:02}/{}/{:04}:{:02}:{:02}:{:02} +0000] \"{} {} {}\" {} {}\n",
        t.day,
        MONTHS[(t.month - 1) as usize],
        t.year,
        t.hour,
        t.minute,
        t.second,
        req.method,
        req.target.cache_key_string(),
        req.version,
        resp.status.as_u16(),
        resp.body.len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, UNIX_EPOCH};
    use swala_http::{Method, StatusCode};

    fn sample() -> (Request, Response) {
        let req = Request::get("/cgi-bin/adl?id=1&ms=5").unwrap();
        let resp = Response::ok("text/html", vec![b'x'; 2048]);
        (req, resp)
    }

    #[test]
    fn clf_line_shape() {
        let (req, resp) = sample();
        // 1998-07-28 12:00:00 UTC.
        let when = UNIX_EPOCH + Duration::from_secs(901_627_200);
        let line = format_clf("10.1.2.3:51000", &req, &resp, when);
        assert_eq!(
            line,
            "10.1.2.3 - - [28/Jul/1998:12:00:00 +0000] \
             \"GET /cgi-bin/adl?id=1&ms=5 HTTP/1.0\" 200 2048\n"
        );
    }

    #[test]
    fn status_and_method_vary() {
        let mut req = Request::new(Method::Post, "/cgi-bin/x").unwrap();
        req.version = swala_http::Version::Http11;
        let mut resp = Response::error(StatusCode::NOT_FOUND);
        resp.body = b"nf".to_vec().into();
        let line = format_clf("h:1", &req, &resp, UNIX_EPOCH);
        assert!(
            line.contains("\"POST /cgi-bin/x HTTP/1.1\" 404 2"),
            "{line}"
        );
    }

    #[test]
    fn log_appends_to_file() {
        let path = std::env::temp_dir().join(format!("swala-clf-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let log = AccessLog::open(&path).unwrap();
        let (req, resp) = sample();
        log.log("1.2.3.4:9", &req, &resp);
        log.log("5.6.7.8:9", &req, &resp);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("1.2.3.4 - - ["));
        assert!(text.lines().nth(1).unwrap().starts_with("5.6.7.8"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn enriched_line_keeps_clf_prefix() {
        use swala_obs::{Outcome, TraceSummary};
        let path = std::env::temp_dir().join(format!("swala-clf-tr-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let log = AccessLog::open(&path).unwrap();
        let (req, resp) = sample();
        let summary = TraceSummary {
            id: 0x0001_0000_0000_002a,
            outcome: Outcome::LocalMem,
            owner: None,
            total_us: 123,
            stages: "rules:1,mem-tier:2".to_string(),
        };
        log.log_with("9.9.9.9:1", &req, &resp, Some(&trace_suffix(&summary)));
        let text = std::fs::read_to_string(&path).unwrap();
        let line = text.lines().next().unwrap();
        // CLF prefix intact, suffix appended after status+bytes.
        assert!(
            line.contains("\" 200 2048 out=local-mem owner=- "),
            "{line}"
        );
        assert!(
            line.contains("trace=0001000000002a") || line.contains("trace=000100000000002a"),
            "{line}"
        );
        assert!(
            line.ends_with("total_us=123 stages=rules:1,mem-tier:2"),
            "{line}"
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn trace_suffix_formats_owner_and_empty_stages() {
        use swala_obs::{Outcome, TraceSummary};
        let s = TraceSummary {
            id: 7,
            outcome: Outcome::Remote,
            owner: Some(2),
            total_us: 9,
            stages: String::new(),
        };
        assert_eq!(
            trace_suffix(&s),
            "out=remote owner=2 trace=0000000000000007 total_us=9 stages=-"
        );
    }

    #[test]
    fn concurrent_logging_keeps_lines_whole() {
        use std::sync::Arc;
        let path = std::env::temp_dir().join(format!("swala-clf-conc-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let log = Arc::new(AccessLog::open(&path).unwrap());
        std::thread::scope(|s| {
            for t in 0..4 {
                let log = Arc::clone(&log);
                s.spawn(move || {
                    let (req, resp) = sample();
                    for _ in 0..100 {
                        log.log(&format!("10.0.0.{t}:1"), &req, &resp);
                    }
                });
            }
        });
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 400);
        for line in text.lines() {
            assert!(line.ends_with("200 2048"), "torn line: {line:?}");
        }
        let _ = std::fs::remove_file(path);
    }
}
