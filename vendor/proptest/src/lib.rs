//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_filter` /
//! `boxed`, `any::<T>()`, `Just`, range strategies, tuple strategies,
//! string strategies from a small regex subset (`[class]{m,n}` and
//! `\PC{m,n}`), `collection::vec`, `option::of`, `prop_oneof!`, and the
//! `proptest!` / `prop_assert*` macros.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed and there is **no shrinking** — a failing
//! case reports its inputs as generated. That keeps the dependency
//! closure empty while preserving the tests' semantics: random
//! exploration of the input space with reproducible failures.

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod test_runner {
    /// Subset of proptest's config: how many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; 64 keeps the single-core CI box
            // responsive while still exploring the space.
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case (carried by `prop_assert!` and friends).
    #[derive(Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }
}

pub use test_runner::ProptestConfig;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Derive a per-test deterministic seed (no shrinking, so reproducible
/// failures depend on stable seeding).
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a over the test name.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A generator of values of `Self::Value`.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view of a strategy, for [`BoxedStrategy`] / `prop_oneof!`.
trait DynStrategy<V> {
    fn dyn_generate(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.dyn_generate(rng)
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `strategy.prop_filter(reason, f)`.
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.whence
        );
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.random_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*}
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random_range(0u8..=1) == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only; NaN breaks the equality-based properties.
        rng.random_range(-1.0e12..1.0e12)
    }
}

/// Strategy for `any::<T>()`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---- ranges as strategies ----

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*}
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

// ---- tuples of strategies ----

macro_rules! tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A / 0);
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
tuple_strategy!(
    A / 0,
    B / 1,
    C / 2,
    D / 3,
    E / 4,
    F / 5,
    G / 6,
    H / 7,
    I / 8
);
tuple_strategy!(
    A / 0,
    B / 1,
    C / 2,
    D / 3,
    E / 4,
    F / 5,
    G / 6,
    H / 7,
    I / 8,
    J / 9
);
tuple_strategy!(
    A / 0,
    B / 1,
    C / 2,
    D / 3,
    E / 4,
    F / 5,
    G / 6,
    H / 7,
    I / 8,
    J / 9,
    K / 10
);
tuple_strategy!(
    A / 0,
    B / 1,
    C / 2,
    D / 3,
    E / 4,
    F / 5,
    G / 6,
    H / 7,
    I / 8,
    J / 9,
    K / 10,
    L / 11
);

// ---- string strategies from a regex subset ----

/// One repeatable unit of the supported regex subset.
#[derive(Debug, Clone)]
struct RegexUnit {
    /// The characters this unit can produce.
    alphabet: Vec<char>,
    /// Inclusive repetition bounds.
    min: usize,
    max: usize,
}

/// Parsed pattern: a sequence of units.
#[derive(Debug, Clone)]
pub struct StringStrategy {
    units: Vec<RegexUnit>,
}

/// Errors from [`string::string_regex`].
#[derive(Debug, Clone)]
pub struct StringParseError(pub String);

fn parse_class(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<Vec<char>, StringParseError> {
    let mut alphabet = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars
            .next()
            .ok_or_else(|| StringParseError("unterminated character class".into()))?;
        match c {
            ']' => {
                if let Some(p) = pending {
                    alphabet.push(p);
                }
                if alphabet.is_empty() {
                    return Err(StringParseError("empty character class".into()));
                }
                return Ok(alphabet);
            }
            '-' => {
                match (pending.take(), chars.peek().copied()) {
                    // `a-z` range form (unless `-` is last before `]`).
                    (Some(lo), Some(hi)) if hi != ']' => {
                        chars.next();
                        if lo > hi {
                            return Err(StringParseError(format!("bad range {lo}-{hi}")));
                        }
                        alphabet.extend(lo..=hi);
                    }
                    // Literal `-`.
                    (prev, _) => {
                        if let Some(p) = prev {
                            alphabet.push(p);
                        }
                        alphabet.push('-');
                    }
                }
            }
            '\\' => {
                if let Some(p) = pending.take() {
                    alphabet.push(p);
                }
                let esc = chars
                    .next()
                    .ok_or_else(|| StringParseError("dangling escape".into()))?;
                pending = Some(esc);
            }
            other => {
                if let Some(p) = pending.take() {
                    alphabet.push(p);
                }
                pending = Some(other);
            }
        }
    }
}

fn parse_repeat(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<(usize, usize), StringParseError> {
    if chars.peek() != Some(&'{') {
        return Ok((1, 1));
    }
    chars.next();
    let mut spec = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            let (lo, hi) = match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse::<usize>()
                        .map_err(|_| StringParseError(format!("bad bound {lo:?}")))?,
                    hi.parse::<usize>()
                        .map_err(|_| StringParseError(format!("bad bound {hi:?}")))?,
                ),
                None => {
                    let n = spec
                        .parse::<usize>()
                        .map_err(|_| StringParseError(format!("bad count {spec:?}")))?;
                    (n, n)
                }
            };
            if lo > hi {
                return Err(StringParseError(format!("bad repetition {{{spec}}}")));
            }
            return Ok((lo, hi));
        }
        spec.push(c);
    }
    Err(StringParseError("unterminated repetition".into()))
}

fn parse_pattern(pattern: &str) -> Result<StringStrategy, StringParseError> {
    let mut chars = pattern.chars().peekable();
    let mut units = Vec::new();
    while let Some(c) = chars.next() {
        let alphabet = match c {
            '[' => parse_class(&mut chars)?,
            '\\' => match (chars.next(), chars.next()) {
                // `\PC`: any printable character (ASCII subset here).
                (Some('P'), Some('C')) => (0x20u8..=0x7e).map(|b| b as char).collect(),
                (a, b) => return Err(StringParseError(format!("unsupported escape \\{a:?}{b:?}"))),
            },
            lit => vec![lit],
        };
        let (min, max) = parse_repeat(&mut chars)?;
        units.push(RegexUnit { alphabet, min, max });
    }
    Ok(StringStrategy { units })
}

impl Strategy for StringStrategy {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for unit in &self.units {
            let n = rng.random_range(unit.min..=unit.max);
            for _ in 0..n {
                out.push(unit.alphabet[rng.random_range(0..unit.alphabet.len())]);
            }
        }
        out
    }
}

/// String literals are strategies: the pattern syntax subset above.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        parse_pattern(self)
            .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {}", e.0))
            .generate(rng)
    }
}

pub mod string {
    pub use super::{StringParseError, StringStrategy};

    /// Compile `pattern` into a string strategy.
    pub fn string_regex(pattern: &str) -> Result<StringStrategy, StringParseError> {
        super::parse_pattern(pattern)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Size bounds for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    /// `vec(element_strategy, size_range)`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.size.min..self.size.max_excl);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// `of(strategy)`: `None` a quarter of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.random_range(0u8..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Weighted union of type-erased strategies (backs `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

pub fn union<V: Debug>(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>();
    assert!(total > 0, "prop_oneof! weights sum to zero");
    Union { arms, total }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.random_range(0..self.total);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight walk exhausted")
    }
}

/// Choose among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::union(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::union(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u32..10, s in "[a-z]{1,4}") { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                #[allow(unused_imports)]
                use $crate::Strategy as _;
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng: $crate::TestRng = rand::SeedableRng::seed_from_u64(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __outcome: ::std::result::Result<
                        ::std::result::Result<(), $crate::test_runner::TestCaseError>,
                        ::std::boxed::Box<dyn ::std::any::Any + Send>,
                    > = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                        ::std::result::Result::Ok(())
                    }));
                    match __outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => panic!(
                            "property {} failed at case {}: {}\n  inputs: {}",
                            stringify!($name), __case, e, __inputs
                        ),
                        Err(panic) => {
                            eprintln!(
                                "property {} panicked at case {}\n  inputs: {}",
                                stringify!($name), __case, __inputs
                            );
                            ::std::panic::resume_unwind(panic);
                        }
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use rand;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn string_pattern_shapes() {
        let mut rng: crate::TestRng = rand::SeedableRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-z0-9/?&=._-]{1,64}", &mut rng);
            assert!((1..=64).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "/?&=._-".contains(c)));
            let p = crate::Strategy::generate(&"\\PC{0,8}", &mut rng);
            assert!(p.chars().count() <= 8);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn class_with_plus_minus_literal() {
        let mut rng: crate::TestRng = rand::SeedableRng::seed_from_u64(2);
        let mut saw_dash = false;
        for _ in 0..500 {
            let s = crate::Strategy::generate(&"[a-z/+-]{1,24}", &mut rng);
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || "/+-".contains(c)),
                "{s:?}"
            );
            saw_dash |= s.contains('-');
        }
        assert!(saw_dash, "literal '-' must be generatable");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(
            x in 0u16..64,
            v in crate::collection::vec(any::<u8>(), 0..16),
            o in crate::option::of(any::<u64>()),
            tag in prop_oneof![1 => Just("a"), 2 => Just("b")],
        ) {
            prop_assert!(x < 64);
            prop_assert!(v.len() < 16);
            prop_assert_eq!(o.is_none() || o.is_some(), true);
            prop_assert_ne!(tag, "c");
        }
    }
}
