//! Directory-mode parametrized regression: the behaviour both directory
//! families must share — cooperative remote hits, deletion propagation,
//! application-driven invalidation from any node, §4.2 false-hit repair
//! — plus the partitioned-only degradation path (unreachable home).
//!
//! Replicated stays the paper-faithful default; these tests run every
//! scenario under both `DirectoryKind`s explicitly so neither the
//! default nor a `SWALA_DIRECTORY` sweep changes what is covered.

use std::time::{Duration, Instant};
use swala::HttpClient;
use swala_cache::{CacheKey, DirectoryKind, NodeId};
use swala_cgi::WorkKind;
use swala_cluster::{ClusterConfig, SwalaCluster};

const BOTH: [DirectoryKind; 2] = [DirectoryKind::Replicated, DirectoryKind::Partitioned];

fn start(nodes: usize, directory: DirectoryKind) -> SwalaCluster {
    SwalaCluster::start(&ClusterConfig {
        nodes,
        work: WorkKind::Sleep,
        directory,
        ..Default::default()
    })
    .unwrap()
}

fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timeout: {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn tag(resp: &swala_http::Response) -> String {
    resp.headers
        .get("X-Swala-Cache")
        .unwrap_or("<none>")
        .to_string()
}

/// Percent-encode a request target for use as a `?key=` value.
fn enc(target: &str) -> String {
    target
        .replace('%', "%25")
        .replace('/', "%2F")
        .replace('?', "%3F")
        .replace('=', "%3D")
        .replace('&', "%26")
}

#[test]
fn remote_hit_works_under_both_directory_modes() {
    for directory in BOTH {
        let cluster = start(2, directory);
        let mut c0 = HttpClient::new(cluster.node(0).http_addr());
        let mut c1 = HttpClient::new(cluster.node(1).http_addr());

        let first = c0.get("/cgi-bin/adl?id=31&ms=0").unwrap();
        assert_eq!(tag(&first), "miss", "{directory:?}");
        assert!(
            cluster.wait_for_directory_convergence(1, Duration::from_secs(10)),
            "{directory:?}"
        );

        let remote = c1.get("/cgi-bin/adl?id=31&ms=0").unwrap();
        assert_eq!(tag(&remote), "remote-hit", "{directory:?}");
        assert_eq!(remote.body, first.body, "{directory:?}");
        assert_eq!(
            cluster.total_cache_stat(|s| s.remote_hits),
            1,
            "{directory:?}"
        );
        // Hit/miss accounting must look identical across modes: one
        // miss (the first execution) plus one remote hit, two lookups.
        assert_eq!(cluster.total_cache_stat(|s| s.lookups), 2, "{directory:?}");
        assert_eq!(cluster.total_cache_stat(|s| s.misses), 1, "{directory:?}");
        cluster.shutdown();
    }
}

#[test]
fn ttl_deletion_propagates_under_both_directory_modes() {
    for directory in BOTH {
        let cluster = SwalaCluster::start(&ClusterConfig {
            nodes: 2,
            work: WorkKind::Sleep,
            rules: swala_cache::CacheRules::parse("cache * ttl=1\n").unwrap(),
            purge_interval: Duration::from_millis(100),
            directory,
            ..Default::default()
        })
        .unwrap();
        let mut c0 = HttpClient::new(cluster.node(0).http_addr());
        c0.get("/cgi-bin/adl?id=32&ms=0").unwrap();
        assert!(cluster.wait_for_directory_convergence(1, Duration::from_secs(10)));

        // After the TTL the purge daemon deletes the entry and announces
        // the deletion the mode's way; every table must forget it.
        wait_until("cluster-wide expiry", || {
            cluster
                .nodes()
                .iter()
                .all(|s| s.manager().directory().total_len() == 0)
        });
        assert_eq!(
            cluster.node(0).cache_stats().expirations,
            1,
            "{directory:?}"
        );
        let again = c0.get("/cgi-bin/adl?id=32&ms=0").unwrap();
        assert_eq!(tag(&again), "miss", "{directory:?}");
        cluster.shutdown();
    }
}

#[test]
fn invalidate_from_non_owner_works_under_both_directory_modes() {
    for directory in BOTH {
        let cluster = start(2, directory);
        let target = "/cgi-bin/adl?id=33&ms=0";
        let mut c0 = HttpClient::new(cluster.node(0).http_addr());
        let mut c1 = HttpClient::new(cluster.node(1).http_addr());
        c0.get(target).unwrap();
        assert!(cluster.wait_for_directory_convergence(1, Duration::from_secs(10)));

        // Node 1 does not own the entry. Replicated classifies it Remote
        // from the local replica; partitioned may have to ask the home
        // first. Both must end with the owner deleting the entry.
        let resp = c1
            .get(&format!("/swala-admin/invalidate?key={}", enc(target)))
            .unwrap();
        assert!(resp.status.is_success(), "{directory:?}");
        let text = String::from_utf8_lossy(&resp.body).to_string();
        assert!(
            text.contains("forwarded to owner") || text.contains("invalidated local entry"),
            "{directory:?}: {text}"
        );
        wait_until("invalidation emptied every table", || {
            cluster
                .nodes()
                .iter()
                .all(|s| s.manager().directory().total_len() == 0)
        });
        let again = c0.get(target).unwrap();
        assert_eq!(tag(&again), "miss", "{directory:?}");
        cluster.shutdown();
    }
}

#[test]
fn false_hit_repairs_under_both_directory_modes() {
    // Pick a key whose partitioned home is node 1, the *reader*: when
    // the home is the owner itself, deleting at the owner also updates
    // the authoritative table and the §4.2 race cannot happen at all —
    // a genuine (and desirable) semantic difference. With the home on
    // the reader's side, both modes consult a stale record and must
    // take the same false-hit repair path.
    let ring =
        swala_cache::HashRing::with_members([NodeId(0), NodeId(1)], swala_cache::DEFAULT_VNODES);
    let target = (0..10_000)
        .map(|i| format!("/cgi-bin/adl?id=f{i}&ms=0"))
        .find(|t| ring.home(&CacheKey::new(t)) == NodeId(1))
        .expect("some key is homed at node 1");
    let target = target.as_str();
    for directory in BOTH {
        let cluster = start(2, directory);
        let mut c0 = HttpClient::new(cluster.node(0).http_addr());
        let mut c1 = HttpClient::new(cluster.node(1).http_addr());
        c0.get(target).unwrap();
        assert!(cluster.wait_for_directory_convergence(1, Duration::from_secs(10)));

        // Delete at the owner *without* any announcement — the §4.2 race
        // window. Whatever table the reader consults (its own replica or
        // the key's home) still names node 0 as owner.
        let key = CacheKey::new(target);
        cluster.node(0).manager().remove_local(&key).unwrap();

        let r = c1.get(target).unwrap();
        assert!(r.status.is_success(), "{directory:?}");
        assert_eq!(tag(&r), "false-hit-fallback", "{directory:?}");
        assert_eq!(cluster.node(1).cache_stats().false_hits, 1, "{directory:?}");
        // The stale record was repaired: a fresh read from node 1 is a
        // local hit on its fallback copy, not another false hit.
        let r2 = c1.get(target).unwrap();
        assert_eq!(tag(&r2), "local-hit", "{directory:?}");
        assert_eq!(cluster.node(1).cache_stats().false_hits, 1, "{directory:?}");
        cluster.shutdown();
    }
}

#[test]
fn unreachable_home_degrades_to_local_execution() {
    // Partitioned-only degradation drill: when a key's home node is
    // dead, a miss on another node must still answer the client, via
    // the home-unreachable fallback (replicated-style local execution).
    let cluster = start(2, DirectoryKind::Partitioned);
    let manager = cluster.node(0).manager().clone();
    // Find a key whose home is node 1 (the node we are about to kill).
    let target = (0..10_000)
        .map(|i| format!("/cgi-bin/adl?id=h{i}&ms=0"))
        .find(|t| manager.home_node(&CacheKey::new(t)) == Some(NodeId(1)))
        .expect("some key is homed at node 1");

    let mut nodes = cluster.into_nodes().into_iter();
    let node0 = nodes.next().unwrap();
    for dead in nodes {
        dead.shutdown();
    }

    let mut c0 = HttpClient::new(node0.http_addr());
    let r = c0.get(&target).unwrap();
    assert!(r.status.is_success());
    assert_eq!(tag(&r), "home-unreachable-fallback");
    // The answer was cached locally; the retry is a plain local hit and
    // never touches the dead home again on the read path.
    let r2 = c0.get(&target).unwrap();
    assert_eq!(tag(&r2), "local-hit");
    node0.shutdown();
}
