//! swala-faults: deterministic fault injection for the cache protocol.
//!
//! The weak-consistency protocol (§4.2) is *designed* to survive lost
//! notices, dead peers and stale directories — but none of that is worth
//! anything unless the failure paths can be exercised on demand and
//! replayed bit-identically. This module provides an injectable transport
//! layer that sits behind the three network seams:
//!
//! * the broadcaster's [`Connector`](crate::peers::Connector) (outgoing
//!   notice links),
//! * the fetch/sync [`Dialer`](crate::fetch::Dialer) (request/reply
//!   sessions), and
//! * the cache daemon's accept path ([`AcceptFilter`]).
//!
//! A [`FaultInjector`] holds an ordered rule list. Each rule matches a
//! `(src, dst, nth-attempt)` triple — attempts are counted per directed
//! pair — and fires a [`FaultAction`]: drop, delay, black-hole, reset or
//! truncate. Probabilistic rules draw from a seeded RNG, and every
//! injected fault is appended to an event trace, so a chaos run with the
//! same seed and the same (sequential) request schedule produces the
//! same trace, byte for byte.

use crate::fetch::{Dialer, FaultStream, StreamFault};
use crate::peers::Connector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::io;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use swala_cache::NodeId;

/// Sentinel "source" for the daemon's accept path, where the dialing
/// node's identity is unknown until its Hello arrives.
pub const ACCEPT_SRC: NodeId = NodeId(u16::MAX);

/// What an injected fault does to a connection attempt or stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Connection refused instantly (peer process is gone).
    Drop,
    /// The operation proceeds after this extra latency (congestion).
    Delay(Duration),
    /// The connect hangs for its full timeout, then fails (packets
    /// silently discarded — a true network black hole).
    BlackHole,
    /// The connection establishes, then dies on first use (peer crashed
    /// after accept, or an RST in flight).
    Reset,
    /// The stream delivers only this many reply bytes, then EOF
    /// (peer crashed mid-write; frames arrive truncated).
    Truncate(usize),
}

impl FaultAction {
    fn name(&self) -> &'static str {
        match self {
            FaultAction::Drop => "drop",
            FaultAction::Delay(_) => "delay",
            FaultAction::BlackHole => "blackhole",
            FaultAction::Reset => "reset",
            FaultAction::Truncate(_) => "truncate",
        }
    }
}

/// One injection rule. Rules are consulted in order; the first match
/// fires. `src`/`dst` of `None` match any node; the attempt window is
/// half-open over the per-(src, dst) attempt counter.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Dialing node (`None` = any; accept-path checks use [`ACCEPT_SRC`]).
    pub src: Option<NodeId>,
    /// Target node (`None` = any).
    pub dst: Option<NodeId>,
    /// First attempt index (0-based, per directed pair) the rule covers.
    pub from_attempt: u64,
    /// One past the last covered attempt; `None` = forever.
    pub until_attempt: Option<u64>,
    /// Probability the rule fires when it matches (seeded RNG).
    pub probability: f64,
    /// What happens when it fires.
    pub action: FaultAction,
}

impl FaultRule {
    /// Rule matching every attempt between `src` and `dst`.
    pub fn between(src: NodeId, dst: NodeId, action: FaultAction) -> Self {
        FaultRule {
            src: Some(src),
            dst: Some(dst),
            from_attempt: 0,
            until_attempt: None,
            probability: 1.0,
            action,
        }
    }

    /// Rule matching every attempt toward `dst`, from any source
    /// (including the daemon accept path).
    pub fn toward(dst: NodeId, action: FaultAction) -> Self {
        FaultRule {
            src: None,
            dst: Some(dst),
            from_attempt: 0,
            until_attempt: None,
            probability: 1.0,
            action,
        }
    }

    /// Restrict to the first `n` attempts of the pair.
    pub fn first(mut self, n: u64) -> Self {
        self.from_attempt = 0;
        self.until_attempt = Some(n);
        self
    }

    /// Restrict to attempts `[from, until)` of the pair.
    pub fn window(mut self, from: u64, until: u64) -> Self {
        self.from_attempt = from;
        self.until_attempt = Some(until);
        self
    }

    /// Fire with probability `p` (deterministic given the injector seed
    /// and the sequence of decisions).
    pub fn with_probability(mut self, p: f64) -> Self {
        self.probability = p;
        self
    }

    fn matches(&self, src: NodeId, dst: NodeId, attempt: u64) -> bool {
        self.src.is_none_or(|s| s == src)
            && self.dst.is_none_or(|d| d == dst)
            && attempt >= self.from_attempt
            && self.until_attempt.is_none_or(|u| attempt < u)
    }
}

/// One injected fault, for trace comparison across replays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    pub src: NodeId,
    pub dst: NodeId,
    /// Attempt index (per directed pair) the fault fired on.
    pub attempt: u64,
    /// [`FaultAction`] name.
    pub action: &'static str,
}

#[derive(Default)]
struct InjectorState {
    /// Attempts per directed (src, dst) pair — faulted or not.
    attempts: HashMap<(u16, u16), u64>,
    trace: Vec<FaultEvent>,
}

/// Deterministic, rule-driven fault source shared by every transport
/// seam of a (test) cluster.
pub struct FaultInjector {
    seed: u64,
    rules: Mutex<Vec<FaultRule>>,
    rng: Mutex<StdRng>,
    state: Mutex<InjectorState>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("seed", &self.seed)
            .field(
                "rules",
                &self.rules.lock().unwrap_or_else(|e| e.into_inner()).len(),
            )
            .finish()
    }
}

impl FaultInjector {
    /// Injector with no rules; add them with [`add_rule`](Self::add_rule).
    pub fn seeded(seed: u64) -> Arc<Self> {
        Arc::new(FaultInjector {
            seed,
            rules: Mutex::new(Vec::new()),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            state: Mutex::new(InjectorState::default()),
        })
    }

    /// The seed this injector replays.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Append a rule (consulted after all earlier rules).
    pub fn add_rule(&self, rule: FaultRule) {
        self.rules
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(rule);
    }

    /// Drop every rule — "heal" the network.
    pub fn clear_rules(&self) {
        self.rules.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// Injected-fault trace so far (the replay invariant: same seed and
    /// schedule ⇒ same trace).
    pub fn trace(&self) -> Vec<FaultEvent> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .trace
            .clone()
    }

    /// How many attempts (faulted or clean) were made from `src` to
    /// `dst`. Chaos tests use this to prove fetch attempts to a
    /// quarantined corpse stop.
    pub fn attempt_count(&self, src: NodeId, dst: NodeId) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .attempts
            .get(&(src.0, dst.0))
            .copied()
            .unwrap_or(0)
    }

    /// Count one attempt and decide its fate.
    pub fn decide(&self, src: NodeId, dst: NodeId) -> Option<FaultAction> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let attempt = {
            let n = state.attempts.entry((src.0, dst.0)).or_insert(0);
            let a = *n;
            *n += 1;
            a
        };
        let rules = self.rules.lock().unwrap_or_else(|e| e.into_inner());
        let hit = rules.iter().find(|r| {
            r.matches(src, dst, attempt)
                && (r.probability >= 1.0
                    || self
                        .rng
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .random_bool(r.probability))
        });
        let action = hit.map(|r| r.action.clone());
        if let Some(a) = &action {
            state.trace.push(FaultEvent {
                src,
                dst,
                attempt,
                action: a.name(),
            });
        }
        action
    }

    /// A [`Connector`] for node `src`'s broadcast links. Stream-level
    /// actions degrade to connect-level ones (`Truncate` behaves like
    /// `Reset`): notice links are fire-and-forget, so a cut stream and a
    /// dead stream are indistinguishable to the writer thread anyway.
    pub fn connector(self: &Arc<Self>, src: NodeId) -> Connector {
        let inj = Arc::clone(self);
        Arc::new(move |peer, addr, timeout| {
            match inj.decide(src, peer) {
                None => TcpStream::connect_timeout(&addr, timeout),
                Some(FaultAction::Drop) => Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "injected: connection refused",
                )),
                Some(FaultAction::Delay(d)) => {
                    std::thread::sleep(d);
                    TcpStream::connect_timeout(&addr, timeout)
                }
                Some(FaultAction::BlackHole) => {
                    std::thread::sleep(timeout);
                    Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "injected: black hole",
                    ))
                }
                Some(FaultAction::Reset) | Some(FaultAction::Truncate(_)) => {
                    let s = TcpStream::connect_timeout(&addr, timeout)?;
                    // Established, then immediately torn down: the first
                    // write on the link fails like an RST in flight.
                    s.shutdown(std::net::Shutdown::Both)?;
                    Ok(s)
                }
            }
        })
    }

    /// A [`Dialer`] for node `src`'s fetch/sync sessions. All five
    /// actions apply; `Truncate` and `Reset` return a live stream that
    /// fails mid-conversation, exercising the frame decoder's partial-
    /// read paths.
    pub fn dialer(self: &Arc<Self>, src: NodeId) -> Dialer {
        let inj = Arc::clone(self);
        Arc::new(move |peer, addr, timeout| match inj.decide(src, peer) {
            None => FaultStream::connect(addr, timeout, StreamFault::None),
            Some(FaultAction::Drop) => Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "injected: connection refused",
            )),
            Some(FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                FaultStream::connect(addr, timeout, StreamFault::None)
            }
            Some(FaultAction::BlackHole) => {
                std::thread::sleep(timeout);
                Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "injected: black hole",
                ))
            }
            Some(FaultAction::Reset) => {
                FaultStream::connect(addr, timeout, StreamFault::ResetReads)
            }
            Some(FaultAction::Truncate(n)) => {
                FaultStream::connect(addr, timeout, StreamFault::TruncateReads(n))
            }
        })
    }

    /// An [`AcceptFilter`] for node `dst`'s cache daemon: faults applied
    /// to inbound connections before any frame is read.
    pub fn acceptor(self: &Arc<Self>, dst: NodeId) -> AcceptFilter {
        let inj = Arc::clone(self);
        Arc::new(move || inj.decide(ACCEPT_SRC, dst))
    }
}

/// Server-side fault hook: consulted once per accepted connection.
/// `Drop`/`Reset`/`Truncate` close the connection unhandled; `Delay`
/// stalls the handler before its first read; `BlackHole` holds the
/// connection open but never services it.
pub type AcceptFilter = Arc<dyn Fn() -> Option<FaultAction> + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_match_by_pair_and_attempt_window() {
        let inj = FaultInjector::seeded(1);
        inj.add_rule(FaultRule::between(NodeId(1), NodeId(0), FaultAction::Drop).first(2));
        assert_eq!(inj.decide(NodeId(1), NodeId(0)), Some(FaultAction::Drop));
        assert_eq!(inj.decide(NodeId(1), NodeId(0)), Some(FaultAction::Drop));
        // Third attempt falls outside the window.
        assert_eq!(inj.decide(NodeId(1), NodeId(0)), None);
        // Different pair: untouched, with its own counter.
        assert_eq!(inj.decide(NodeId(0), NodeId(1)), None);
        assert_eq!(inj.attempt_count(NodeId(1), NodeId(0)), 3);
        assert_eq!(inj.attempt_count(NodeId(0), NodeId(1)), 1);
    }

    #[test]
    fn first_matching_rule_wins() {
        let inj = FaultInjector::seeded(1);
        inj.add_rule(FaultRule::between(NodeId(0), NodeId(1), FaultAction::Reset).first(1));
        inj.add_rule(FaultRule::toward(NodeId(1), FaultAction::Drop));
        assert_eq!(inj.decide(NodeId(0), NodeId(1)), Some(FaultAction::Reset));
        assert_eq!(inj.decide(NodeId(0), NodeId(1)), Some(FaultAction::Drop));
    }

    #[test]
    fn same_seed_same_trace() {
        let run = |seed| {
            let inj = FaultInjector::seeded(seed);
            inj.add_rule(FaultRule::toward(NodeId(0), FaultAction::Drop).with_probability(0.5));
            for _ in 0..50 {
                inj.decide(NodeId(1), NodeId(0));
            }
            inj.trace()
        };
        assert_eq!(run(7), run(7));
        // The probabilistic trace is non-trivial (neither all nor none).
        let t = run(7);
        assert!(!t.is_empty() && t.len() < 50, "{} faults", t.len());
    }

    #[test]
    fn clear_rules_heals() {
        let inj = FaultInjector::seeded(1);
        inj.add_rule(FaultRule::toward(NodeId(0), FaultAction::Drop));
        assert!(inj.decide(NodeId(1), NodeId(0)).is_some());
        inj.clear_rules();
        assert!(inj.decide(NodeId(1), NodeId(0)).is_none());
    }

    #[test]
    fn acceptor_counts_under_sentinel_src() {
        let inj = FaultInjector::seeded(1);
        inj.add_rule(FaultRule {
            src: Some(ACCEPT_SRC),
            dst: Some(NodeId(2)),
            from_attempt: 0,
            until_attempt: Some(1),
            probability: 1.0,
            action: FaultAction::Drop,
        });
        let filter = inj.acceptor(NodeId(2));
        assert_eq!(filter(), Some(FaultAction::Drop));
        assert_eq!(filter(), None);
        assert_eq!(inj.attempt_count(ACCEPT_SRC, NodeId(2)), 2);
    }
}
