//! The `swala` server binary.
//!
//! ```text
//! swala <config-file> [--print-config]
//! ```
//!
//! Runs one Swala node from a `swala.conf`-format file (see
//! `ServerOptions::parse`). Peers are named with `peer <id> <cache-addr>`
//! lines, which this binary strips and wires before handing the rest to
//! the library. Runs until killed.
//!
//! Example two-node deployment:
//!
//! ```text
//! # node0.conf                      # node1.conf
//! node 0                            node 1
//! nodes 2                           nodes 2
//! listen 0.0.0.0:8080               listen 0.0.0.0:8081
//! cache_listen 0.0.0.0:9080         cache_listen 0.0.0.0:9081
//! peer 1 127.0.0.1:9081             peer 0 127.0.0.1:9080
//! docroot /srv/www                  docroot /srv/www
//! cache /cgi-bin/* min_ms=50        cache /cgi-bin/* min_ms=50
//! ```

use std::net::SocketAddr;
use std::sync::Arc;
use swala::{BoundSwala, ServerOptions};
use swala_cgi::{null_cgi, ProgramRegistry, SimulatedProgram, WorkKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(config_path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: swala <config-file> [--print-config]");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(config_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("swala: cannot read {config_path}: {e}");
            std::process::exit(1);
        }
    };

    // `peer <id> <addr>` lines are deployment wiring, handled here.
    let mut peers: Vec<(usize, SocketAddr)> = Vec::new();
    let mut lib_config = String::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if let Some(rest) = line.strip_prefix("peer ") {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            let parsed = match parts.as_slice() {
                [id, addr] => id
                    .parse::<usize>()
                    .ok()
                    .zip(addr.parse::<SocketAddr>().ok()),
                _ => None,
            };
            match parsed {
                Some((id, addr)) => peers.push((id, addr)),
                None => {
                    eprintln!("swala: line {}: bad peer line {line:?}", lineno + 1);
                    std::process::exit(1);
                }
            }
        } else {
            lib_config.push_str(raw);
            lib_config.push('\n');
        }
    }

    let options = match ServerOptions::parse(&lib_config) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("swala: {config_path}: {e}");
            std::process::exit(1);
        }
    };
    if args.iter().any(|a| a == "--print-config") {
        println!("{options:#?}");
        println!("peers: {peers:?}");
        return;
    }

    let mut peer_addrs: Vec<Option<SocketAddr>> = vec![None; options.num_nodes];
    for (id, addr) in peers {
        if id >= options.num_nodes {
            eprintln!(
                "swala: peer id {id} out of range for {} nodes",
                options.num_nodes
            );
            std::process::exit(1);
        }
        peer_addrs[id] = Some(addr);
    }

    // Default program set; a deployment embedding Swala as a library
    // registers its own programs.
    let mut registry = ProgramRegistry::new();
    registry.register(Arc::new(null_cgi()));
    registry.register(Arc::new(SimulatedProgram::trace_driven(
        "adl",
        WorkKind::Spin,
    )));

    let node = options.node;
    let bound = match BoundSwala::bind(options, registry) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("swala: bind failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "swala {node}: http on {}, cache protocol on {}",
        bound.http_addr(),
        bound.cache_addr()
    );
    let server = match bound.start(peer_addrs) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("swala: start failed: {e}");
            std::process::exit(1);
        }
    };

    // Serve until killed; print a stats line periodically like 1998
    // servers logged to their error_log.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(60));
        eprintln!("swala {node}: {}", server.cache_stats());
    }
}
