//! Simulation configuration and results.

use swala_cache::{DirectoryKind, PolicyKind, DEFAULT_VNODES};

/// How requests are spread over the cluster's nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Strict rotation, as a front-end sprayer (the paper's SWEB
    /// heritage) would do under uniform load.
    RoundRobin,
    /// Uniform random node per request, seeded.
    Random(u64),
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Cluster size.
    pub nodes: usize,
    /// Per-node cache capacity in entries (the paper's "cache size").
    pub capacity: usize,
    /// Replacement policy (all nodes alike).
    pub policy: PolicyKind,
    /// Cooperative caching on, or §5.3's stand-alone mode where "each
    /// node caches what it receives and is unaware of any other node".
    pub cooperative: bool,
    /// Broadcast latency in *request ticks*: a notice sent at request
    /// `t` becomes visible to other nodes before request `t + delay`.
    /// `0` models an idealized instant network; larger values widen the
    /// §4.2 false-miss/false-hit window.
    pub broadcast_delay: u64,
    /// Request routing.
    pub routing: Routing,
    /// Directory organisation: the paper's replicated directory (every
    /// node hears every insert/delete) or the partitioned variant where
    /// a consistent-hash ring assigns each key one *home* node that is
    /// the single recipient of its updates and the oracle for lookups.
    pub directory: DirectoryKind,
    /// Virtual nodes per member on the partitioned ring. Matches the
    /// live default so simulated placement equals live placement.
    pub ring_vnodes: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            nodes: 2,
            capacity: 2000,
            policy: PolicyKind::Lru,
            cooperative: true,
            broadcast_delay: 0,
            routing: Routing::RoundRobin,
            directory: DirectoryKind::Replicated,
            ring_vnodes: DEFAULT_VNODES,
        }
    }
}

/// Exact event counts from one simulated run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimResult {
    /// Requests replayed.
    pub requests: u64,
    /// Hits served from the receiving node's own cache.
    pub local_hits: u64,
    /// Hits served from a peer's cache (cooperative only).
    pub remote_hits: u64,
    /// Requests that executed because nothing usable was cached.
    pub misses: u64,
    /// Executions that a perfectly consistent directory would have
    /// avoided (the entry existed somewhere but was not yet visible).
    pub false_misses: u64,
    /// Remote fetches that found the entry already deleted.
    pub false_hits: u64,
    /// Entries evicted by the replacement policy.
    pub evictions: u64,
    /// Total execution time paid, in microseconds.
    pub exec_micros: u64,
    /// Execution time avoided by hits, in microseconds.
    pub saved_micros: u64,
    /// Directory-update messages put on the (simulated) wire: each
    /// insert/delete notice costs N−1 messages replicated, at most one
    /// partitioned (zero when the inserting node is the key's home).
    pub dir_update_msgs: u64,
    /// Estimated payload bytes of those update messages.
    pub dir_update_bytes: u64,
    /// Partitioned-mode directory lookups: a miss on a non-home node
    /// asks the key's home before deciding remote-hit vs execute.
    pub dir_lookups: u64,
}

impl SimResult {
    /// All hits.
    pub fn hits(&self) -> u64 {
        self.local_hits + self.remote_hits
    }

    /// Hits as a percentage of `upper_bound` (the trace's repeat count).
    pub fn pct_of_upper_bound(&self, upper_bound: u64) -> f64 {
        if upper_bound == 0 {
            0.0
        } else {
            100.0 * self.hits() as f64 / upper_bound as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_of_upper_bound() {
        let r = SimResult {
            local_hits: 30,
            remote_hits: 20,
            ..Default::default()
        };
        assert_eq!(r.hits(), 50);
        assert!((r.pct_of_upper_bound(100) - 50.0).abs() < 1e-12);
        assert_eq!(r.pct_of_upper_bound(0), 0.0);
    }
}
