//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset used by the workspace's wire codecs: the `Buf`
//! (reading big-endian primitives off a `&[u8]` cursor) and `BufMut`
//! (appending big-endian primitives) traits, a `Vec<u8>`-backed
//! `BytesMut` builder, and an immutable `Bytes` produced by
//! `BytesMut::freeze`.

use std::ops::Deref;

/// Read side: a cursor over bytes. Implemented for `&[u8]`, which
/// advances the slice itself (as the real crate does).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        *self = &self[cnt..];
    }
}

/// Write side: append big-endian primitives and raw slices.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable byte builder; freezes into [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    pub fn freeze(self) -> Bytes {
        Bytes { inner: self.inner }
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

/// Immutable byte container.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Bytes {
    inner: Vec<u8>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes { inner: Vec::new() }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            inner: data.to_vec(),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { inner: v }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u16(300);
        b.put_u32(70_000);
        b.put_u64(1 << 40);
        b.put_slice(b"xy");
        let frozen = b.freeze();
        let mut r = &frozen[..];
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 300);
        assert_eq!(r.get_u32(), 70_000);
        assert_eq!(r.get_u64(), 1 << 40);
        let mut rest = [0u8; 2];
        r.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xy");
        assert_eq!(r.remaining(), 0);
    }
}
