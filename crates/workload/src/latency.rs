//! Latency recording and summarization.

use std::time::Duration;

/// Collects per-request latencies for one load-generation run.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    micros: Vec<u64>,
}

/// Aggregates of a [`LatencyRecorder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    pub count: usize,
    pub mean: Duration,
    pub p50: Duration,
    pub p95: Duration,
    pub p99: Duration,
    pub max: Duration,
    pub total: Duration,
}

impl LatencyRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        LatencyRecorder {
            micros: Vec::with_capacity(n),
        }
    }

    /// Record one latency sample.
    pub fn record(&mut self, d: Duration) {
        self.micros.push(d.as_micros() as u64);
    }

    /// Merge another recorder (per-thread recorders → one report).
    pub fn merge(&mut self, other: LatencyRecorder) {
        self.micros.extend(other.micros);
    }

    pub fn len(&self) -> usize {
        self.micros.len()
    }

    pub fn is_empty(&self) -> bool {
        self.micros.is_empty()
    }

    /// Summarize. Returns `None` when no samples were recorded.
    pub fn summarize(&self) -> Option<LatencySummary> {
        if self.micros.is_empty() {
            return None;
        }
        let mut sorted = self.micros.clone();
        sorted.sort_unstable();
        let total: u64 = sorted.iter().sum();
        let pct = |p: f64| {
            let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
            Duration::from_micros(sorted[idx])
        };
        Some(LatencySummary {
            count: sorted.len(),
            mean: Duration::from_micros(total / sorted.len() as u64),
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            max: Duration::from_micros(*sorted.last().expect("non-empty")),
            total: Duration::from_micros(total),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summarizes_to_none() {
        assert!(LatencyRecorder::new().summarize().is_none());
    }

    #[test]
    fn known_values() {
        let mut r = LatencyRecorder::new();
        for ms in [10u64, 20, 30, 40, 100] {
            r.record(Duration::from_millis(ms));
        }
        let s = r.summarize().unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, Duration::from_millis(40));
        assert_eq!(s.p50, Duration::from_millis(30));
        assert_eq!(s.max, Duration::from_millis(100));
        assert_eq!(s.total, Duration::from_millis(200));
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyRecorder::new();
        a.record(Duration::from_millis(1));
        let mut b = LatencyRecorder::new();
        b.record(Duration::from_millis(3));
        a.merge(b);
        let s = a.summarize().unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, Duration::from_millis(2));
    }

    #[test]
    fn percentiles_on_single_sample() {
        let mut r = LatencyRecorder::new();
        r.record(Duration::from_millis(7));
        let s = r.summarize().unwrap();
        assert_eq!(s.p50, Duration::from_millis(7));
        assert_eq!(s.p99, Duration::from_millis(7));
    }
}
