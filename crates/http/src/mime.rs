//! File-extension → MIME-type mapping.
//!
//! Covers the types appearing in the WebStone mix and the ADL-style
//! workloads (HTML pages, images, map tiles, archives).

/// Content type for a lowercase file extension; `None` for unknown.
pub fn from_extension(ext: &str) -> Option<&'static str> {
    Some(match ext {
        "html" | "htm" => "text/html",
        "txt" => "text/plain",
        "css" => "text/css",
        "js" => "application/javascript",
        "gif" => "image/gif",
        "jpg" | "jpeg" => "image/jpeg",
        "png" => "image/png",
        "tif" | "tiff" => "image/tiff",
        "pdf" => "application/pdf",
        "ps" => "application/postscript",
        "zip" => "application/zip",
        "gz" => "application/gzip",
        "tar" => "application/x-tar",
        "bin" | "exe" => "application/octet-stream",
        "xml" => "text/xml",
        _ => return None,
    })
}

/// Content type for a path, defaulting to `application/octet-stream`.
pub fn for_path(path: &str) -> &'static str {
    path.rsplit('/')
        .next()
        .and_then(|file| file.rfind('.').map(|i| &file[i + 1..]))
        .map(|e| e.to_ascii_lowercase())
        .and_then(|e| from_extension(&e))
        .unwrap_or("application/octet-stream")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_extensions() {
        assert_eq!(from_extension("html"), Some("text/html"));
        assert_eq!(from_extension("gif"), Some("image/gif"));
        assert_eq!(from_extension("jpeg"), Some("image/jpeg"));
        assert_eq!(from_extension("weird"), None);
    }

    #[test]
    fn path_resolution() {
        assert_eq!(for_path("/a/b/index.html"), "text/html");
        assert_eq!(for_path("/a/IMG.JPG"), "image/jpeg");
        assert_eq!(for_path("/a/noext"), "application/octet-stream");
        assert_eq!(for_path("/dir.d/file"), "application/octet-stream");
        assert_eq!(for_path("/a/archive.tar.gz"), "application/gzip");
    }
}
