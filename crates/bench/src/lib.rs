//! # swala-bench
//!
//! The experiment harness: one runner per table and figure of the paper
//! (§3 Table 1; §5.1 Table 2 and Figure 3; §5.2 Figure 4, Tables 3–4;
//! §5.3 Tables 5–6) plus the design-choice ablations DESIGN.md commits
//! to. The `tables` binary prints paper-reported values next to measured
//! ones; the Criterion benches (`benches/`) measure the corresponding
//! critical-path operations statistically.
//!
//! ## Time scaling
//!
//! Live experiments run the paper's second-denominated CGI costs scaled
//! down by [`scale::ms_per_paper_second`] (default 15 ms per paper
//! second, override with `SWALA_BENCH_SCALE_MS`). Reported numbers are
//! in *live milliseconds*; conclusions are about ratios and shape, never
//! absolute 1998 wall-clock.

pub mod experiments;
pub mod report;
pub mod scale;
pub mod servers;

pub use report::TableReport;
