//! Simulated CGI programs with controllable cost and output.
//!
//! The real ADL programs (spatial queries, multi-resolution image
//! extraction) are proprietary; the properties that matter to every
//! experiment in the paper are (a) service time, (b) output size and
//! (c) determinism. `SimulatedProgram` controls all three exactly.
//!
//! Two built-in parameter conventions make trace-driven workloads easy:
//!
//! * `nullcgi` — "does no work and produces less than a hundred bytes of
//!   output" (§5.1, Figure 3);
//! * `adl` — reads `ms` (service time in milliseconds) and `id` (identity)
//!   from the query string, so a synthesized trace fully determines cost
//!   and cache identity.

use crate::output::CgiOutput;
use crate::program::{CgiRequest, Program};
use std::hint::black_box;
use std::io;
use std::time::{Duration, Instant};

/// How simulated service time is consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkKind {
    /// Busy-spin on the CPU. Faithful to the paper's CPU-bound workload:
    /// concurrent requests on one node contend for cores, so response time
    /// grows with load, which Figures 3–4 depend on.
    Spin,
    /// Sleep. The request occupies a handler thread but no core — useful
    /// for I/O-bound modelling and for cheap large-scale tests.
    Sleep,
}

/// A deterministic CGI program with configurable cost.
pub struct SimulatedProgram {
    name: String,
    /// Fixed service time; may be overridden per-request by the `ms`
    /// query parameter when `trace_driven` is set.
    base_cost: Duration,
    work: WorkKind,
    /// Fixed output size in bytes (payload is deterministic filler).
    output_bytes: usize,
    /// Honor `ms=` / `bytes=` query overrides (trace-driven workloads).
    trace_driven: bool,
}

impl SimulatedProgram {
    /// Program with a fixed cost and output size.
    pub fn fixed(name: &str, cost: Duration, work: WorkKind, output_bytes: usize) -> Self {
        SimulatedProgram {
            name: name.to_string(),
            base_cost: cost,
            work,
            output_bytes,
            trace_driven: false,
        }
    }

    /// Program whose cost/size come from `ms=`/`bytes=` query parameters.
    ///
    /// This is the workhorse for synthesized ADL traces: the trace decides
    /// each request's cost, and distinct `id=` values give distinct cache
    /// keys automatically (the key is path+query).
    pub fn trace_driven(name: &str, work: WorkKind) -> Self {
        SimulatedProgram {
            name: name.to_string(),
            base_cost: Duration::ZERO,
            work,
            output_bytes: 1024,
            trace_driven: true,
        }
    }

    fn cost_for(&self, req: &CgiRequest) -> Duration {
        if self.trace_driven {
            if let Some(ms) = req.param_u64("ms") {
                return Duration::from_millis(ms);
            }
        }
        self.base_cost
    }

    fn output_bytes_for(&self, req: &CgiRequest) -> usize {
        if self.trace_driven {
            if let Some(b) = req.param_u64("bytes") {
                return b as usize;
            }
        }
        self.output_bytes
    }
}

impl Program for SimulatedProgram {
    fn run(&self, req: &CgiRequest) -> io::Result<CgiOutput> {
        let cost = self.cost_for(req);
        match self.work {
            WorkKind::Sleep => {
                if !cost.is_zero() {
                    std::thread::sleep(cost);
                }
            }
            WorkKind::Spin => spin_for(cost),
        }
        let size = self.output_bytes_for(req);
        Ok(CgiOutput::html(render_body(&self.name, req, size)))
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Burn CPU for `d`, resistant to compiler elision.
fn spin_for(d: Duration) {
    if d.is_zero() {
        return;
    }
    let start = Instant::now();
    let mut acc: u64 = 0x9E37_79B9_7F4A_7C15;
    while start.elapsed() < d {
        // A short batch of arithmetic between clock checks keeps the
        // Instant::now() overhead negligible at millisecond costs.
        for i in 0..512u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        black_box(acc);
    }
}

/// Deterministic HTML body: identity line + filler up to `size` bytes.
///
/// The body is a pure function of (program, script, query), which is what
/// makes cached results verifiable in tests: re-execution must reproduce
/// the cached bytes exactly.
fn render_body(program: &str, req: &CgiRequest, size: usize) -> Vec<u8> {
    let header = format!(
        "<html><body><p>program={program} script={} query={}</p>\n",
        req.script_name, req.query_string
    );
    let footer = "</body></html>\n";
    let mut body = Vec::with_capacity(size.max(header.len() + footer.len()));
    body.extend_from_slice(header.as_bytes());
    // Deterministic filler derived from the query, so different requests
    // produce different payloads (useful for corruption detection).
    let seed = req
        .query_string
        .bytes()
        .fold(17u8, |a, b| a.wrapping_mul(31).wrapping_add(b));
    while body.len() + footer.len() < size {
        let line_len = (size - footer.len() - body.len()).min(64);
        for i in 0..line_len.saturating_sub(1) {
            body.push(b'a' + ((seed as usize + i) % 26) as u8);
        }
        body.push(b'\n');
    }
    body.extend_from_slice(footer.as_bytes());
    body
}

/// The paper's `nullcgi`: no work, under a hundred bytes of output (§5.1).
pub fn null_cgi() -> SimulatedProgram {
    SimulatedProgram::fixed("nullcgi", Duration::ZERO, WorkKind::Spin, 80)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swala_http::Request;

    fn cgi(target: &str) -> CgiRequest {
        CgiRequest::from_http(&Request::get(target).unwrap(), "c:1", "n", 80)
    }

    #[test]
    fn nullcgi_is_fast_and_small() {
        let p = null_cgi();
        let start = Instant::now();
        let out = p.run(&cgi("/cgi-bin/nullcgi")).unwrap();
        assert!(start.elapsed() < Duration::from_millis(50));
        assert!(
            out.body.len() <= 100,
            "nullcgi output is {} bytes",
            out.body.len()
        );
        assert_eq!(out.status, swala_http::StatusCode::OK);
    }

    #[test]
    fn deterministic_output() {
        let p = SimulatedProgram::trace_driven("adl", WorkKind::Spin);
        let a = p.run(&cgi("/cgi-bin/adl?id=7&ms=0")).unwrap();
        let b = p.run(&cgi("/cgi-bin/adl?id=7&ms=0")).unwrap();
        assert_eq!(a, b);
        let c = p.run(&cgi("/cgi-bin/adl?id=8&ms=0")).unwrap();
        assert_ne!(a.body, c.body);
    }

    #[test]
    fn trace_driven_cost_is_respected() {
        let p = SimulatedProgram::trace_driven("adl", WorkKind::Spin);
        let start = Instant::now();
        p.run(&cgi("/cgi-bin/adl?id=1&ms=30")).unwrap();
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(30), "{elapsed:?}");
        assert!(elapsed < Duration::from_millis(500), "{elapsed:?}");
    }

    #[test]
    fn sleep_kind_also_waits() {
        let p = SimulatedProgram::trace_driven("adl", WorkKind::Sleep);
        let start = Instant::now();
        p.run(&cgi("/cgi-bin/adl?ms=20")).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn output_size_controllable() {
        let p = SimulatedProgram::trace_driven("adl", WorkKind::Spin);
        let out = p.run(&cgi("/cgi-bin/adl?id=1&ms=0&bytes=4096")).unwrap();
        // Exact to within one filler line.
        assert!(
            out.body.len() >= 4096 && out.body.len() < 4096 + 80,
            "{}",
            out.body.len()
        );
    }

    #[test]
    fn fixed_ignores_query_overrides() {
        let p = SimulatedProgram::fixed("f", Duration::ZERO, WorkKind::Spin, 200);
        let out = p.run(&cgi("/cgi-bin/f?ms=5000&bytes=1")).unwrap();
        assert!(
            out.body.len() >= 190,
            "fixed size should win: {}",
            out.body.len()
        );
    }

    #[test]
    fn tiny_output_still_wellformed() {
        let p = SimulatedProgram::fixed("t", Duration::ZERO, WorkKind::Spin, 1);
        let out = p.run(&cgi("/cgi-bin/t")).unwrap();
        let s = String::from_utf8(out.body).unwrap();
        assert!(s.starts_with("<html>"));
        assert!(s.ends_with("</html>\n"));
    }
}
