//! C10K smoke: prove the event engine holds ten thousand idle
//! keep-alive connections while a live request still completes fast.
//!
//! ```text
//! c10k                 # 10k idle conns (capped by RLIMIT_NOFILE), 250 ms bound
//! ```
//!
//! Environment:
//! * `SWALA_C10K_CONNS`    — idle connections to park (default 10000)
//! * `SWALA_C10K_BOUND_MS` — worst acceptable live-request latency (default 250)
//!
//! Both ends of every parked connection live in this process, so the
//! usable count is `(RLIMIT_NOFILE - headroom) / 2`; the limit is raised
//! to its hard cap first and any trimming is reported. Exits nonzero if
//! a connection fails, the live request fails, or the bound is missed.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};
use swala::{EngineKind, HttpClient, ProgramRegistry, ServerOptions, SwalaServer};
use swala_cgi::null_cgi;
use swala_http::StatusCode;

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let nofile = swala::raise_nofile_limit().expect("raise RLIMIT_NOFILE");
    let requested: usize = env_or("SWALA_C10K_CONNS", 10_000);
    let bound_ms: f64 = env_or("SWALA_C10K_BOUND_MS", 250.0);
    let usable = (nofile.saturating_sub(1000) / 2) as usize;
    let conns = requested.min(usable);
    if conns < requested {
        println!(
            "c10k: RLIMIT_NOFILE {nofile} caps the sweep at {conns} conns ({requested} requested)"
        );
    }

    let mut registry = ProgramRegistry::new();
    registry.register(Arc::new(null_cgi()));
    let server = SwalaServer::start_single(
        ServerOptions {
            engine: EngineKind::Event,
            ..Default::default()
        },
        registry,
    )
    .expect("start event-engine server");
    let addr = server.http_addr();

    let t0 = Instant::now();
    let mut parked: Vec<TcpStream> = Vec::with_capacity(conns);
    for i in 0..conns {
        match TcpStream::connect(addr) {
            Ok(s) => parked.push(s),
            Err(e) => {
                eprintln!("c10k: connect {i}/{conns} failed: {e}");
                std::process::exit(1);
            }
        }
        // Yield well inside the accept backlog so a single-CPU machine
        // never drops SYNs (a dropped SYN costs a ~1 s retransmit).
        if i % 64 == 63 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let park_secs = t0.elapsed().as_secs_f64();

    // The herd is connected client-side; give the loop thread a bounded
    // moment to drain the accept backlog before holding it to the count.
    for _ in 0..200 {
        if server.engine_stats().open_connections.get() >= conns as i64 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // The live request, measured while the whole herd sits parked.
    let mut client = HttpClient::new(addr).with_timeout(Duration::from_secs(10));
    let t1 = Instant::now();
    let resp = client.get("/cgi-bin/nullcgi").expect("live request");
    let live_ms = t1.elapsed().as_secs_f64() * 1e3;
    assert_eq!(resp.status, StatusCode::OK);

    let stats = server.engine_stats();
    let open = stats.open_connections.get();
    println!(
        "c10k: parked {conns} idle conns in {park_secs:.1} s (server sees {open} open); \
         live request {live_ms:.2} ms (bound {bound_ms} ms)"
    );
    if open < conns as i64 {
        eprintln!("c10k: server holds {open} connections, expected at least {conns}");
        std::process::exit(1);
    }
    if live_ms > bound_ms {
        eprintln!("c10k: live request took {live_ms:.2} ms, bound {bound_ms} ms");
        std::process::exit(1);
    }
    drop(parked);
    server.shutdown();
    println!("c10k: ok");
}
