//! The paper's §3 pipeline, end to end on our own stack:
//!
//! 1. run a Swala node with access logging;
//! 2. drive a mixed workload through it (the "two months of ADL use");
//! 3. parse the Common-Log-Format file the server wrote;
//! 4. filter to successful GETs, re-send them and time each response
//!    ("we have re-sent the requests to the server and timed them");
//! 5. run the Table-1 threshold analysis over the measured trace.

use std::sync::Arc;
use swala::{HttpClient, ServerOptions, SwalaServer};
use swala_cgi::{ProgramRegistry, SimulatedProgram, WorkKind};
use swala_workload::{analyze_thresholds, filter_for_replay, parse_clf, replay_and_time};

fn registry() -> ProgramRegistry {
    let mut r = ProgramRegistry::new();
    r.register(Arc::new(SimulatedProgram::trace_driven(
        "adl",
        WorkKind::Sleep,
    )));
    r
}

#[test]
fn section3_methodology_end_to_end() {
    let log_path = std::env::temp_dir().join(format!("swala-pipeline-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    let docroot = std::env::temp_dir().join(format!("swala-pipeline-root-{}", std::process::id()));
    std::fs::create_dir_all(&docroot).unwrap();
    std::fs::write(docroot.join("page.html"), "<p>static</p>").unwrap();

    // Phase 1+2: a production-shaped node (caching on, access log on)
    // serves the "historical" traffic the analysis will study.
    {
        let server = SwalaServer::start_single(
            ServerOptions {
                pool_size: 2,
                access_log: Some(log_path.clone()),
                docroot: Some(docroot.clone()),
                ..Default::default()
            },
            registry(),
        )
        .unwrap();
        let mut client = HttpClient::new(server.http_addr());
        // A repeated expensive query, some one-off queries, files, and
        // things the paper's filter must drop.
        for _ in 0..4 {
            client.get("/cgi-bin/adl?id=hot&ms=30").unwrap();
        }
        for i in 0..5 {
            client
                .get(&format!("/cgi-bin/adl?id=cold{i}&ms=2"))
                .unwrap();
        }
        for _ in 0..6 {
            client.get("/page.html").unwrap();
        }
        client.get("/definitely-missing.html").unwrap(); // 404 → filtered
        let mut post =
            swala_http::Request::new(swala_http::Method::Post, "/cgi-bin/adl?id=hot&ms=30")
                .unwrap();
        client.request(&post.clone()).unwrap(); // POST → filtered
        post.headers.set("Connection", "close");
        server.shutdown();
        // Keep nothing of the first server but its log.
    }

    // Phase 3: parse the log the server wrote.
    let text = std::fs::read_to_string(&log_path).unwrap();
    let records = parse_clf(&text);
    assert_eq!(records.len(), 17, "every request logged: {text}");
    let targets = filter_for_replay(&records);
    assert_eq!(targets.len(), 15, "404 and POST filtered out");

    // Phase 4: re-send against a fresh, cache-disabled node (the paper
    // timed raw executions) and time each request.
    let replay_server = SwalaServer::start_single(
        ServerOptions {
            pool_size: 2,
            caching_enabled: false,
            docroot: Some(docroot.clone()),
            ..Default::default()
        },
        registry(),
    )
    .unwrap();
    let (trace, failures) = replay_and_time(replay_server.http_addr(), &targets);
    replay_server.shutdown();
    assert_eq!(failures, 0);
    assert_eq!(trace.len(), 15);

    // Phase 5: Table-1-style analysis. With a 10 ms threshold only the
    // hot 30 ms query qualifies: 4 occurrences → 3 repeats, 1 entry.
    let rows = analyze_thresholds(&trace, &[0.010]);
    assert_eq!(rows[0].total_repeats, 3, "{rows:?}");
    assert_eq!(rows[0].unique_repeats, 1);
    // Savings ≈ 3 × 30 ms out of ≈ (4×30 + 5×2 + ε) ms total — well over
    // half the measured service time, the §3 "significant potential".
    assert!(rows[0].saved_pct > 40.0, "{}", rows[0].saved_pct);

    let _ = std::fs::remove_file(log_path);
    let _ = std::fs::remove_dir_all(docroot);
}
