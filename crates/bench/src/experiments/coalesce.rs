//! Flash-crowd coalescing: duplicate work with and without single-flight.
//!
//! §4.2's weak-consistency design re-executes a document whenever
//! identical requests overlap (false-miss scenario 1) and lets every
//! concurrent reader fetch the same remote entry independently. The
//! single-flight registry removes both duplications; this experiment
//! quantifies the effect with two bursts, each run once per mode:
//!
//! * **local burst** — N threads released by a barrier against one cold
//!   key on a single node. The measure is CGI executions per burst:
//!   exactly 1 with coalescing on, >1 (up to N) with it off.
//! * **owner fetch burst** — N threads on node 0 against a key owned by
//!   node 1, with a fault-injected dial delay widening the fetch window.
//!   The measure is wire fetches (connections opened + reuses) toward
//!   the owner: exactly 1 with coalescing on, ~N with it off.
//!
//! The asserts double as the CI gate (`scripts/check.sh` runs this
//! experiment in quick mode): duplicate executions must be zero with
//! coalescing on and nonzero with it off. Results are written to
//! `BENCH_coalesce.json`.

use crate::report::{fmt_ms, TableReport};
use crate::scale;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use swala::HttpClient;
use swala_cache::NodeId;
use swala_cgi::WorkKind;
use swala_cluster::{ClusterConfig, SwalaCluster};
use swala_proto::{FaultAction, FaultInjector, FaultRule};

/// Threads per burst.
const BURST: usize = 16;

/// One barrier-released burst of identical requests; per-request ms.
fn burst(addr: std::net::SocketAddr, target: &str) -> Vec<f64> {
    let gate = Arc::new(Barrier::new(BURST));
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..BURST)
            .map(|_| {
                let gate = Arc::clone(&gate);
                let target = target.to_string();
                s.spawn(move || {
                    let mut c = HttpClient::new(addr);
                    gate.wait();
                    let t0 = Instant::now();
                    let r = c.get(&target).expect("burst request");
                    assert!(r.status.is_success(), "burst request failed: {target}");
                    t0.elapsed().as_secs_f64() * 1e3
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

struct LocalOutcome {
    executions: u64,
    false_misses: u64,
    coalesce_waits: u64,
    mean_ms: f64,
}

/// Cold-key flash crowd on one node: how many times does the CGI run?
fn local_burst(coalesce: bool, work_ms: u64) -> LocalOutcome {
    let cluster = SwalaCluster::start(&ClusterConfig {
        nodes: 1,
        pool_size: BURST + 2,
        work: WorkKind::Sleep,
        coalesce,
        ..Default::default()
    })
    .expect("start cluster");
    let target = format!("/cgi-bin/adl?id=flash&ms={work_ms}");
    let lat = burst(cluster.node(0).http_addr(), &target);
    let stats = cluster.node(0).cache_stats();
    let req = cluster.node(0).request_stats();
    cluster.shutdown();
    LocalOutcome {
        executions: req.executions,
        false_misses: stats.false_misses,
        coalesce_waits: stats.coalesce_waits,
        mean_ms: lat.iter().sum::<f64>() / lat.len() as f64,
    }
}

struct FetchOutcome {
    wire_fetches: u64,
    leads: u64,
    waits: u64,
}

/// Same-instant remote hits on node 0 against node 1's entry: how many
/// fetches reach the owner's wire?
fn remote_burst(coalesce: bool, work_ms: u64, dial_delay: Duration) -> FetchOutcome {
    let inj = FaultInjector::seeded(42);
    let cluster = SwalaCluster::start(&ClusterConfig {
        nodes: 2,
        pool_size: BURST + 2,
        work: WorkKind::Sleep,
        coalesce,
        faults: Some(Arc::clone(&inj)),
        ..Default::default()
    })
    .expect("start cluster");
    let target = format!("/cgi-bin/adl?id=owned&ms={work_ms}");
    let mut c1 = HttpClient::new(cluster.node(1).http_addr());
    c1.get(&target).expect("warm owner");
    assert!(cluster.wait_for_directory_convergence(1, Duration::from_secs(10)));
    // Every 0→1 dial pays this extra latency, so the whole burst lands
    // inside the leader's fetch window deterministically.
    inj.add_rule(FaultRule::between(
        NodeId(0),
        NodeId(1),
        FaultAction::Delay(dial_delay),
    ));
    burst(cluster.node(0).http_addr(), &target);
    let pool = cluster.node(0).fetch_pool_stats();
    cluster.shutdown();
    FetchOutcome {
        wire_fetches: pool.connects_opened + pool.reuses,
        leads: pool.coalesce_leads,
        waits: pool.coalesce_waits,
    }
}

pub fn run() -> TableReport {
    let quick = scale::quick();
    let work_ms: u64 = if quick { 120 } else { 300 };
    let dial_delay = Duration::from_millis(if quick { 100 } else { 200 });

    let local_on = local_burst(true, work_ms);
    let local_off = local_burst(false, work_ms);
    let fetch_on = remote_burst(true, work_ms, dial_delay);
    let fetch_off = remote_burst(false, work_ms, dial_delay);

    // CI gates: coalescing deduplicates completely; the paper-faithful
    // mode demonstrably re-runs.
    assert_eq!(
        local_on.executions, 1,
        "coalesce on: the flash crowd must execute the CGI exactly once"
    );
    assert_eq!(local_on.false_misses, 0, "coalesce on: no §4.2 re-runs");
    assert!(
        local_on.coalesce_waits >= 1,
        "burst never overlapped the leader"
    );
    assert!(
        local_off.executions > 1,
        "coalesce off must preserve the duplicate executions it measures"
    );
    assert!(
        fetch_on.wire_fetches <= 1,
        "coalesce on: at most one owner fetch per burst, saw {}",
        fetch_on.wire_fetches
    );
    assert_eq!(fetch_on.leads, 1, "exactly one fetch flight leader");
    assert!(
        fetch_off.wire_fetches > 1,
        "coalesce off: every reader fetches independently"
    );

    let json_local = |o: &LocalOutcome| {
        format!(
            "{{\"executions\": {}, \"duplicate_executions\": {}, \"false_misses\": {}, \
             \"coalesce_waits\": {}, \"mean_ms\": {:.4}}}",
            o.executions,
            o.executions - 1,
            o.false_misses,
            o.coalesce_waits,
            o.mean_ms
        )
    };
    let json_fetch = |o: &FetchOutcome| {
        format!(
            "{{\"wire_fetches\": {}, \"coalesce_leads\": {}, \"coalesce_waits\": {}}}",
            o.wire_fetches, o.leads, o.waits
        )
    };
    let json = format!(
        "{{\n  \"experiment\": \"coalesce\",\n  \"quick\": {quick},\n  \
         \"burst\": {BURST},\n  \"work_ms\": {work_ms},\n  \"local\": {{\n    \
         \"coalesce_on\": {},\n    \"coalesce_off\": {}\n  }},\n  \"owner_fetch\": {{\n    \
         \"coalesce_on\": {},\n    \"coalesce_off\": {}\n  }}\n}}\n",
        json_local(&local_on),
        json_local(&local_off),
        json_fetch(&fetch_on),
        json_fetch(&fetch_off),
    );
    std::fs::write("BENCH_coalesce.json", &json).expect("write BENCH_coalesce.json");

    let mut report = TableReport::new(
        "coalesce",
        "Flash crowd: duplicate work per 16-thread burst, by coalesce mode",
        &["burst / mode", "CGI runs", "owner fetches", "mean latency"],
    );
    for (name, l, f) in [
        ("coalesce on (default)", &local_on, &fetch_on),
        ("coalesce off (paper §4.2)", &local_off, &fetch_off),
    ] {
        report.row(vec![
            name.into(),
            format!("{}", l.executions),
            format!("{}", f.wire_fetches),
            format!("{} ms", fmt_ms(l.mean_ms)),
        ]);
    }
    report.note(format!(
        "coalesce on: 1 execution served {BURST} requests ({} waited on the flight); \
         off re-ran the CGI {} times ({} false misses)",
        local_on.coalesce_waits, local_off.executions, local_off.false_misses,
    ));
    report.note(format!(
        "owner fetches per burst: {} on ({} waiters shared the leader's reply) vs {} off",
        fetch_on.wire_fetches, fetch_on.waits, fetch_off.wire_fetches,
    ));
    report.note("results written to BENCH_coalesce.json");
    report
}
