//! WebStone-style load generation.
//!
//! §5.1 benchmarks file fetching with WebStone and this mix: "a 500 byte
//! file is requested 35% of the time; a 5 Kb file is requested 50%; a
//! 50Kb file is requested 14%; a 500Kb file is requested 0.9%, and a 1Mb
//! file is requested 0.1% of the time." The CGI experiments run "24
//! client processes sending the same request".
//!
//! [`LoadGenerator`] reproduces the tool: N client threads, each with a
//! keep-alive connection, issuing requests and recording wall-clock
//! latency; the report carries the mean response time the paper's tables
//! plot.

use crate::latency::{LatencyRecorder, LatencySummary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::SocketAddr;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use swala::HttpClient;

/// One file class in the WebStone mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// Path under the docroot.
    pub path: &'static str,
    /// File size in bytes.
    pub size: usize,
    /// Request probability ×1000 (the weights sum to 1000).
    pub weight_permille: u32,
}

/// The paper's WebStone file mix.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileMix;

impl FileMix {
    /// The five file classes with the paper's exact weights.
    pub const CLASSES: [FileClass; 5] = [
        FileClass {
            path: "/ws500.txt",
            size: 500,
            weight_permille: 350,
        },
        FileClass {
            path: "/ws5k.txt",
            size: 5 * 1024,
            weight_permille: 500,
        },
        FileClass {
            path: "/ws50k.txt",
            size: 50 * 1024,
            weight_permille: 140,
        },
        FileClass {
            path: "/ws500k.txt",
            size: 500 * 1024,
            weight_permille: 9,
        },
        FileClass {
            path: "/ws1m.txt",
            size: 1024 * 1024,
            weight_permille: 1,
        },
    ];

    /// Sample a path according to the mix.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> &'static str {
        let mut roll = rng.random_range(0..1000u32);
        for class in &Self::CLASSES {
            if roll < class.weight_permille {
                return class.path;
            }
            roll -= class.weight_permille;
        }
        unreachable!("weights sum to 1000")
    }
}

/// Create the WebStone files under `docroot`.
pub fn materialize_docroot(docroot: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(docroot)?;
    for class in &FileMix::CLASSES {
        let rel = class.path.trim_start_matches('/');
        let body: Vec<u8> = (0..class.size).map(|i| b'a' + (i % 26) as u8).collect();
        std::fs::write(docroot.join(rel), body)?;
    }
    Ok(())
}

/// Aggregate result of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    pub latency: LatencySummary,
    /// Requests that failed (connect/parse errors, non-2xx).
    pub errors: usize,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Requests completed successfully.
    pub completed: usize,
}

impl LoadReport {
    /// Completed requests per wall-clock second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.completed as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// Multi-threaded closed-loop load generator.
#[derive(Debug, Clone, Copy)]
pub struct LoadGenerator {
    /// Concurrent client threads (the paper's "client processes").
    pub clients: usize,
}

impl LoadGenerator {
    pub fn new(clients: usize) -> Self {
        assert!(clients > 0);
        LoadGenerator { clients }
    }

    /// Each client issues `per_client` requests, sampling targets from
    /// `sampler` with its own seeded RNG. Clients round-robin over
    /// `addrs`.
    pub fn run_sampler<F>(
        &self,
        addrs: &[SocketAddr],
        per_client: usize,
        seed: u64,
        sampler: F,
    ) -> LoadReport
    where
        F: Fn(&mut StdRng) -> String + Send + Sync,
    {
        assert!(!addrs.is_empty());
        let started = Instant::now();
        let mut recorder = LatencyRecorder::with_capacity(self.clients * per_client);
        let mut errors = 0usize;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.clients)
                .map(|c| {
                    let sampler = &sampler;
                    let addr = addrs[c % addrs.len()];
                    scope.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(c as u64));
                        let mut client = HttpClient::new(addr);
                        let mut rec = LatencyRecorder::with_capacity(per_client);
                        let mut errs = 0usize;
                        for _ in 0..per_client {
                            let target = sampler(&mut rng);
                            let t0 = Instant::now();
                            match client.get(&target) {
                                Ok(resp) if resp.status.is_success() => rec.record(t0.elapsed()),
                                _ => errs += 1,
                            }
                        }
                        (rec, errs)
                    })
                })
                .collect();
            for h in handles {
                let (rec, errs) = h.join().expect("client thread panicked");
                recorder.merge(rec);
                errors += errs;
            }
        });
        finish(recorder, errors, started)
    }

    /// Clients drain a shared list of targets (trace replay): target `i`
    /// goes to whichever client pulls index `i` first, mirroring a
    /// front-end sprayer. Each client sticks to one server address.
    pub fn replay_shared(&self, addrs: &[SocketAddr], targets: &[String]) -> LoadReport {
        assert!(!addrs.is_empty());
        let started = Instant::now();
        let next = AtomicUsize::new(0);
        let mut recorder = LatencyRecorder::with_capacity(targets.len());
        let mut errors = 0usize;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.clients)
                .map(|c| {
                    let next = &next;
                    let addr = addrs[c % addrs.len()];
                    scope.spawn(move || {
                        let mut client = HttpClient::new(addr);
                        let mut rec = LatencyRecorder::new();
                        let mut errs = 0usize;
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= targets.len() {
                                break;
                            }
                            let t0 = Instant::now();
                            match client.get(&targets[i]) {
                                Ok(resp) if resp.status.is_success() => rec.record(t0.elapsed()),
                                _ => errs += 1,
                            }
                        }
                        (rec, errs)
                    })
                })
                .collect();
            for h in handles {
                let (rec, errs) = h.join().expect("client thread panicked");
                recorder.merge(rec);
                errors += errs;
            }
        });
        finish(recorder, errors, started)
    }
}

fn finish(recorder: LatencyRecorder, errors: usize, started: Instant) -> LoadReport {
    let completed = recorder.len();
    let latency = recorder.summarize().unwrap_or(LatencySummary {
        count: 0,
        mean: Duration::ZERO,
        p50: Duration::ZERO,
        p95: Duration::ZERO,
        p99: Duration::ZERO,
        max: Duration::ZERO,
        total: Duration::ZERO,
    });
    LoadReport {
        latency,
        errors,
        elapsed: started.elapsed(),
        completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_weights_sum_to_1000() {
        let total: u32 = FileMix::CLASSES.iter().map(|c| c.weight_permille).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn sampling_matches_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = std::collections::HashMap::new();
        let n = 100_000;
        for _ in 0..n {
            *counts.entry(FileMix::sample(&mut rng)).or_insert(0usize) += 1;
        }
        for class in &FileMix::CLASSES {
            let freq = *counts.get(class.path).unwrap_or(&0) as f64 / n as f64;
            let expected = class.weight_permille as f64 / 1000.0;
            assert!(
                (freq - expected).abs() < 0.01,
                "{}: freq {freq} vs expected {expected}",
                class.path
            );
        }
    }

    #[test]
    fn materialize_creates_correct_sizes() {
        let dir = std::env::temp_dir().join(format!("swala-ws-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        materialize_docroot(&dir).unwrap();
        for class in &FileMix::CLASSES {
            let meta = std::fs::metadata(dir.join(class.path.trim_start_matches('/'))).unwrap();
            assert_eq!(meta.len() as usize, class.size, "{}", class.path);
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn load_generator_against_live_server() {
        use std::sync::Arc;
        use swala::{ProgramRegistry, ServerOptions, SimulatedProgram, SwalaServer, WorkKind};
        let mut registry = ProgramRegistry::new();
        registry.register(Arc::new(SimulatedProgram::trace_driven(
            "adl",
            WorkKind::Spin,
        )));
        let server = SwalaServer::start_single(
            ServerOptions {
                pool_size: 4,
                ..Default::default()
            },
            registry,
        )
        .unwrap();

        let report = LoadGenerator::new(4).run_sampler(&[server.http_addr()], 10, 9, |rng| {
            format!("/cgi-bin/adl?id={}&ms=0", rng.random_range(0..5))
        });
        assert_eq!(report.completed, 40);
        assert_eq!(report.errors, 0);
        assert!(report.latency.mean > Duration::ZERO);
        assert!(report.throughput() > 0.0);

        let targets: Vec<String> = (0..30)
            .map(|i| format!("/cgi-bin/adl?id={}&ms=0", i % 3))
            .collect();
        let replay = LoadGenerator::new(3).replay_shared(&[server.http_addr()], &targets);
        assert_eq!(replay.completed + replay.errors, 30);
        assert_eq!(replay.errors, 0);
        server.shutdown();
    }

    #[test]
    fn errors_counted_for_dead_server() {
        let report =
            LoadGenerator::new(2).run_sampler(&["127.0.0.1:1".parse().unwrap()], 3, 1, |_| {
                "/x".to_string()
            });
        assert_eq!(report.completed, 0);
        assert_eq!(report.errors, 6);
    }
}
