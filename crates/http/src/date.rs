//! RFC 1123 HTTP date formatting (`Date:` headers) without external crates.

use std::time::{Duration, SystemTime, UNIX_EPOCH};

const DAY_NAMES: [&str; 7] = ["Thu", "Fri", "Sat", "Sun", "Mon", "Tue", "Wed"];
const MONTH_NAMES: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

/// Calendar date/time in UTC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UtcDateTime {
    pub year: i64,
    pub month: u32,
    pub day: u32,
    pub hour: u32,
    pub minute: u32,
    pub second: u32,
    /// Days since the Unix epoch, used for weekday computation.
    days_since_epoch: i64,
}

impl UtcDateTime {
    /// Convert a `SystemTime` (clamped at the epoch) to UTC calendar time.
    pub fn from_system_time(t: SystemTime) -> UtcDateTime {
        let secs = t
            .duration_since(UNIX_EPOCH)
            .unwrap_or(Duration::ZERO)
            .as_secs() as i64;
        Self::from_unix_seconds(secs)
    }

    /// Convert seconds since the Unix epoch (non-negative) to calendar time.
    pub fn from_unix_seconds(secs: i64) -> UtcDateTime {
        let days = secs.div_euclid(86_400);
        let rem = secs.rem_euclid(86_400);
        let (year, month, day) = civil_from_days(days);
        UtcDateTime {
            year,
            month,
            day,
            hour: (rem / 3600) as u32,
            minute: ((rem % 3600) / 60) as u32,
            second: (rem % 60) as u32,
            days_since_epoch: days,
        }
    }

    /// Three-letter English weekday name. 1970-01-01 was a Thursday.
    pub fn weekday(&self) -> &'static str {
        DAY_NAMES[self.days_since_epoch.rem_euclid(7) as usize]
    }

    /// RFC 1123 format: `Sun, 06 Nov 1994 08:49:37 GMT`.
    pub fn to_rfc1123(&self) -> String {
        format!(
            "{}, {:02} {} {:04} {:02}:{:02}:{:02} GMT",
            self.weekday(),
            self.day,
            MONTH_NAMES[(self.month - 1) as usize],
            self.year,
            self.hour,
            self.minute,
            self.second
        )
    }
}

/// The current time formatted for a `Date:` header.
pub fn http_date_now() -> String {
    UtcDateTime::from_system_time(SystemTime::now()).to_rfc1123()
}

/// [`http_date_now`] with a per-second cache.
///
/// Every response carries a `Date:` header, but the RFC 1123 string
/// only changes once per second — so format once per tick and hand out
/// clones, instead of one calendar conversion + format per request on
/// the hot path.
pub fn http_date_cached() -> String {
    use std::sync::Mutex;
    static CACHE: Mutex<Option<(u64, String)>> = Mutex::new(None);
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or(Duration::ZERO)
        .as_secs();
    let mut cached = CACHE.lock().unwrap_or_else(|p| p.into_inner());
    match &*cached {
        Some((at, text)) if *at == secs => text.clone(),
        _ => {
            let text = UtcDateTime::from_unix_seconds(secs as i64).to_rfc1123();
            *cached = Some((secs, text.clone()));
            text
        }
    }
}

/// Parse an RFC 1123 date (`Sun, 06 Nov 1994 08:49:37 GMT`) to Unix
/// seconds. Returns `None` for anything else — including the obsolete
/// RFC 850 and asctime formats, which the Swala workloads never produce.
pub fn parse_rfc1123(s: &str) -> Option<u64> {
    // "Www, DD Mon YYYY HH:MM:SS GMT" — fixed-width, 29 bytes.
    let s = s.trim();
    if s.len() != 29 || !s.ends_with(" GMT") || s.as_bytes()[3] != b',' {
        return None;
    }
    let day: u32 = s.get(5..7)?.parse().ok()?;
    let mon_name = s.get(8..11)?;
    let month = MONTH_NAMES.iter().position(|m| *m == mon_name)? as u32 + 1;
    let year: i64 = s.get(12..16)?.parse().ok()?;
    let hour: u64 = s.get(17..19)?.parse().ok()?;
    let minute: u64 = s.get(20..22)?.parse().ok()?;
    let second: u64 = s.get(23..25)?.parse().ok()?;
    if day == 0 || day > 31 || hour > 23 || minute > 59 || second > 60 || year < 1970 {
        return None;
    }
    let days = days_from_civil(year, month, day);
    if days < 0 {
        return None;
    }
    Some(days as u64 * 86_400 + hour * 3600 + minute * 60 + second)
}

/// Inverse of `civil_from_days`: (y, m, d) → days since 1970-01-01.
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = y.div_euclid(400);
    let yoe = y - era * 400; // [0, 399]
    let mp = if m > 2 { m - 3 } else { m + 9 } as i64; // [0, 11]
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Howard Hinnant's `civil_from_days`: days since 1970-01-01 → (y, m, d).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097); // day of era [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch() {
        let t = UtcDateTime::from_unix_seconds(0);
        assert_eq!((t.year, t.month, t.day), (1970, 1, 1));
        assert_eq!(t.weekday(), "Thu");
        assert_eq!(t.to_rfc1123(), "Thu, 01 Jan 1970 00:00:00 GMT");
    }

    #[test]
    fn rfc_canonical_example() {
        // RFC 2616's canonical example date.
        // Sun, 06 Nov 1994 08:49:37 GMT = 784111777 unix seconds.
        let t = UtcDateTime::from_unix_seconds(784_111_777);
        assert_eq!(t.to_rfc1123(), "Sun, 06 Nov 1994 08:49:37 GMT");
    }

    #[test]
    fn paper_era_date() {
        // 1998-07-28 12:00:00 UTC, around the HPDC'98 conference.
        let t = UtcDateTime::from_unix_seconds(901_627_200);
        assert_eq!((t.year, t.month, t.day), (1998, 7, 28));
        assert_eq!(t.weekday(), "Tue");
    }

    #[test]
    fn leap_year_handling() {
        // 2000-02-29 existed (divisible by 400).
        let t = UtcDateTime::from_unix_seconds(951_782_400);
        assert_eq!((t.year, t.month, t.day), (2000, 2, 29));
        // 1900 was not a leap year: 1900-03-01 follows 1900-02-28, but our
        // clock starts at 1970 so check 2100 boundary arithmetic instead
        // via 2100-02-28 + 1 day = 2100-03-01.
        let feb28_2100 = 4_107_456_000; // 2100-02-28 00:00:00 UTC
        let t = UtcDateTime::from_unix_seconds(feb28_2100 + 86_400);
        assert_eq!((t.year, t.month, t.day), (2100, 3, 1));
    }

    #[test]
    fn weekdays_cycle() {
        for i in 0..14 {
            let t = UtcDateTime::from_unix_seconds(i * 86_400);
            assert_eq!(t.weekday(), DAY_NAMES[(i % 7) as usize]);
        }
    }

    #[test]
    fn now_formats() {
        let s = http_date_now();
        assert!(s.ends_with(" GMT"));
        assert_eq!(s.len(), 29);
    }

    #[test]
    fn parse_roundtrips_format() {
        for secs in [0u64, 784_111_777, 901_627_200, 951_782_400, 1_700_000_000] {
            let text = UtcDateTime::from_unix_seconds(secs as i64).to_rfc1123();
            assert_eq!(parse_rfc1123(&text), Some(secs), "{text}");
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "Sun, 06 Nov 1994 08:49:37 PST",  // not GMT
            "Sunday, 06-Nov-94 08:49:37 GMT", // RFC 850 form
            "Sun Nov  6 08:49:37 1994",       // asctime form
            "Sun, 06 Xxx 1994 08:49:37 GMT",  // bad month
            "Sun, 40 Nov 1994 08:49:37 GMT",  // bad day
            "Sun, 06 Nov 1994 25:49:37 GMT",  // bad hour
            "Sun, 06 Nov 1969 08:49:37 GMT",  // pre-epoch
        ] {
            assert_eq!(parse_rfc1123(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn parse_accepts_surrounding_whitespace() {
        assert_eq!(parse_rfc1123("  Thu, 01 Jan 1970 00:00:00 GMT "), Some(0));
    }

    #[test]
    fn month_boundaries() {
        // 1997-09-01 (start of the ADL log window studied in the paper).
        let t = UtcDateTime::from_unix_seconds(873_072_000);
        assert_eq!((t.year, t.month, t.day), (1997, 9, 1));
        // 1997-10-31 (end of the window).
        let t = UtcDateTime::from_unix_seconds(878_256_000);
        assert_eq!((t.year, t.month, t.day), (1997, 10, 31));
    }
}
