//! # swala-obs — telemetry for the Swala reproduction
//!
//! The paper's evaluation (§5) is a study of *where time goes*: local
//! hit vs. remote hit vs. miss-and-execute. This crate gives the
//! reproduction the instruments that study needs:
//!
//! * [`MetricsRegistry`] — named counters (closures over the owners'
//!   existing relaxed atomics), [`Gauge`]s, and log-linear
//!   [`Histogram`]s with p50/p90/p99/max snapshots, rendered as
//!   Prometheus text and parseable back via [`parse_exposition`].
//! * [`Trace`] / [`Telemetry`] — per-request typed span events with a
//!   node-unique 64-bit id that rides the `FetchRequest` wire message,
//!   so one remote hit yields correlated spans on requester and owner.
//! * [`counters!`] — generates an atomic counter struct together with
//!   its snapshot struct, `snapshot()`, Display plumbing and registry
//!   hookup from a single field list, so a new counter cannot be added
//!   to the struct but forgotten in the snapshot (a drift that
//!   happened three times in this repo's history).
//!
//! Design constraints, enforced throughout: no locks and no time
//! sources on the hot path beyond one `Instant` pair per traced stage;
//! disabled telemetry degrades to branch-and-return no-ops so the
//! `obs off` configuration is an honest baseline.

mod heat;
mod hist;
mod registry;
mod telemetry;
mod trace;

pub use heat::{merge_hotkeys, render_hotkeys_json, HeatEntry, HeatSketch};
pub use hist::{bucket_index, bucket_upper, Histogram, HistogramSnapshot, BUCKETS, SUB, SUB_BITS};
pub use registry::{
    parse_exposition, render_cluster, Gauge, MetricSnapshot, MetricValue, MetricsRegistry, Sample,
};
pub use telemetry::{Telemetry, TraceSummary};
pub use trace::{CompletedTrace, Outcome, SpanRecord, Stage, Trace};

/// Define an atomic counter struct plus its plain-value snapshot.
///
/// ```
/// swala_obs::counters! {
///     /// Counters for the widget path.
///     pub struct WidgetStats => WidgetSnapshot {
///         made: "Widgets made",
///         dropped: "Widgets dropped on the floor",
///     }
/// }
///
/// let stats = std::sync::Arc::new(WidgetStats::new());
/// WidgetStats::bump(&stats.made);
/// assert_eq!(stats.snapshot().made, 1);
///
/// // Every field registers as `<prefix>_<field>` — none can be missed.
/// let reg = swala_obs::MetricsRegistry::new();
/// stats.register_into(&reg, "swala_widget");
/// assert!(reg.render().contains("swala_widget_made 1"));
/// ```
///
/// Generated API: `new()`, `bump(&field)`, `add(&field, n)`,
/// `snapshot() -> Snap`, `register_into(&Arc<Self>, &registry, prefix)`,
/// `FIELDS` (names in declaration order), and `Snap::fmt_fields` which
/// writes `field=value` pairs for Display impls.
#[macro_export]
macro_rules! counters {
    (
        $(#[$smeta:meta])*
        pub struct $name:ident => $snap:ident {
            $( $(#[$fmeta:meta])* $field:ident : $help:literal ),+ $(,)?
        }
    ) => {
        $(#[$smeta])*
        #[derive(Debug, Default)]
        pub struct $name {
            $( $(#[$fmeta])* pub $field: ::std::sync::atomic::AtomicU64, )+
        }

        #[doc = concat!("Plain-value snapshot of [`", stringify!($name), "`].")]
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct $snap {
            $( $(#[$fmeta])* pub $field: u64, )+
        }

        impl $name {
            /// Counter field names, in declaration order.
            pub const FIELDS: &'static [&'static str] = &[ $( stringify!($field), )+ ];

            pub fn new() -> $name {
                <$name as ::std::default::Default>::default()
            }

            /// Relaxed increment — counters are advisory, never load-bearing.
            pub fn bump(counter: &::std::sync::atomic::AtomicU64) {
                counter.fetch_add(1, ::std::sync::atomic::Ordering::Relaxed);
            }

            /// Relaxed add.
            pub fn add(counter: &::std::sync::atomic::AtomicU64, n: u64) {
                counter.fetch_add(n, ::std::sync::atomic::Ordering::Relaxed);
            }

            /// Relaxed decrement — reclassify an event after the fact
            /// (e.g. a miss that turned out to be a remote hit). The
            /// caller must have bumped the same counter earlier.
            pub fn debit(counter: &::std::sync::atomic::AtomicU64) {
                counter.fetch_sub(1, ::std::sync::atomic::Ordering::Relaxed);
            }

            /// Coherent-enough copy for reporting (relaxed loads).
            pub fn snapshot(&self) -> $snap {
                $snap {
                    $( $field: self.$field.load(::std::sync::atomic::Ordering::Relaxed), )+
                }
            }

            /// Register every field into `registry` as `<prefix>_<field>`
            /// — the registry reads the same atomics, nothing is copied.
            pub fn register_into(
                self: &::std::sync::Arc<Self>,
                registry: &$crate::MetricsRegistry,
                prefix: &str,
            ) {
                $(
                    let me = ::std::sync::Arc::clone(self);
                    registry.register_counter(
                        &::std::format!("{}_{}", prefix, stringify!($field)),
                        $help,
                        move || me.$field.load(::std::sync::atomic::Ordering::Relaxed),
                    );
                )+
            }
        }

        impl $snap {
            /// Write `field=value` for every counter, space-separated.
            /// Display impls delegate here so no field can be omitted.
            pub fn fmt_fields(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                let mut sep = "";
                $(
                    ::std::write!(f, "{sep}{}={}", stringify!($field), self.$field)?;
                    sep = " ";
                )+
                let _ = sep;
                ::std::result::Result::Ok(())
            }
        }
    };
}

#[cfg(test)]
mod macro_tests {
    use std::sync::Arc;

    crate::counters! {
        /// Test counters.
        pub struct TestStats => TestSnapshot {
            /// First thing.
            alpha: "Alpha events",
            beta: "Beta events",
        }
    }

    impl std::fmt::Display for TestSnapshot {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.fmt_fields(f)
        }
    }

    #[test]
    fn snapshot_and_fields_cover_every_counter() {
        let s = TestStats::new();
        TestStats::bump(&s.alpha);
        TestStats::add(&s.beta, 5);
        let snap = s.snapshot();
        assert_eq!(snap.alpha, 1);
        assert_eq!(snap.beta, 5);
        assert_eq!(TestStats::FIELDS, &["alpha", "beta"]);
        let text = snap.to_string();
        for field in TestStats::FIELDS {
            assert!(
                text.contains(&format!("{field}=")),
                "Display missing {field}: {text}"
            );
        }
        assert_eq!(text, "alpha=1 beta=5");
    }

    #[test]
    fn register_into_exposes_every_field() {
        let s = Arc::new(TestStats::new());
        TestStats::bump(&s.beta);
        let reg = crate::MetricsRegistry::new();
        s.register_into(&reg, "swala_test");
        let text = reg.render();
        for field in TestStats::FIELDS {
            assert!(text.contains(&format!("swala_test_{field} ")), "{text}");
        }
        assert!(text.contains("swala_test_beta 1\n"));
        // Registered closures read the live atomics, not a copy.
        TestStats::bump(&s.beta);
        assert!(reg.render().contains("swala_test_beta 2\n"));
    }
}
