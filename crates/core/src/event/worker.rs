//! The event engine's bounded worker pool.
//!
//! The loop thread must never block, but CGI execution and remote cache
//! fetches do. Parsed requests are queued here; `pool_size` workers run
//! [`handle_request`] — the same Figure 2 control flow the threaded pool
//! uses — and post completions back, waking the loop. The queue is
//! unbounded in memory but bounded in concurrency; its depth is exported
//! as `swala_engine_worker_queue_depth`.

use super::source::WakeupHandle;
use crate::handler::{handle_request, NodeContext};
use crate::stats::EngineStats;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use swala_http::{Request, Response};
use swala_obs::{Stage, Trace};

/// One parsed request awaiting a worker.
pub struct Job {
    pub token: u64,
    pub req: Request,
    pub peer: String,
    /// First byte of the request (trace attempt start).
    pub started: Instant,
    /// When parsing completed (end of the Parse span).
    pub parse_end: Instant,
}

/// A handled request on its way back to the loop.
pub struct Completion {
    pub token: u64,
    pub req: Request,
    pub resp: Response,
    pub keep: bool,
    pub trace: Trace,
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    stopping: AtomicBool,
}

/// `size` worker threads around one job queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    pub fn start(
        size: usize,
        ctx: Arc<NodeContext>,
        completions: Arc<Mutex<Vec<Completion>>>,
        waker: WakeupHandle,
        stats: Arc<EngineStats>,
    ) -> std::io::Result<WorkerPool> {
        assert!(size > 0, "worker pool must have at least one thread");
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stopping: AtomicBool::new(false),
        });
        let mut handles = Vec::with_capacity(size);
        for i in 0..size {
            let shared = Arc::clone(&shared);
            let ctx = Arc::clone(&ctx);
            let completions = Arc::clone(&completions);
            let waker = waker.clone();
            let stats = Arc::clone(&stats);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("swala-worker-{i}"))
                    .spawn(move || worker_thread(&shared, &ctx, &completions, &waker, &stats))?,
            );
        }
        Ok(WorkerPool { shared, handles })
    }

    pub fn submit(&self, job: Job, stats: &EngineStats) {
        stats.worker_queue_depth.add(1);
        self.shared.queue.lock().unwrap().push_back(job);
        self.shared.available.notify_one();
    }

    /// Stop after the queue drains: every accepted request still gets a
    /// response during shutdown, mirroring the threaded pool finishing
    /// its in-flight connections.
    pub fn stop(mut self) {
        self.shared.stopping.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_thread(
    shared: &Shared,
    ctx: &NodeContext,
    completions: &Mutex<Vec<Completion>>,
    waker: &WakeupHandle,
    stats: &EngineStats,
) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.stopping.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.available.wait(queue).unwrap();
            }
        };
        stats.worker_queue_depth.sub(1);
        let keep = job.req.keep_alive();
        // Identical per-request telemetry to the threaded pool: trace
        // begins at the request's first byte, Parse span covers the wire
        // parse, handler spans land via `handle_request`.
        let mut trace = ctx
            .telemetry
            .begin_trace(&job.req.target.cache_key_string(), job.started);
        trace.record_span(Stage::Parse, job.started, job.parse_end);
        let mut resp = handle_request(ctx, &job.req, &job.peer, &mut trace);
        resp.version = job.req.version;
        resp.set_keep_alive(keep);
        completions.lock().unwrap().push(Completion {
            token: job.token,
            req: job.req,
            resp,
            keep,
            trace,
        });
        waker.wake();
    }
}
