//! The request-trace model.

/// Static file fetch or dynamic (CGI) execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    Static,
    Dynamic,
}

/// One request in a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRequest {
    /// Request target. For dynamic requests the query encodes identity
    /// and cost (`/cgi-bin/adl?id=N&ms=M`), so replaying the trace
    /// against a live server reproduces the intended cache behaviour and
    /// service times with no side channel.
    pub target: String,
    pub kind: RequestKind,
    /// Service time this request costs to execute, in microseconds
    /// (unscaled — the paper's log is in seconds; live replays scale it).
    pub service_micros: u64,
}

impl TraceRequest {
    /// A dynamic request for entity `id` costing `service_micros`.
    ///
    /// `scale_num/scale_den` converts analysis-time microseconds to the
    /// live `ms=` parameter (e.g. 1 s of paper time → 25 ms live).
    pub fn dynamic(id: u64, service_micros: u64, live_ms: u64) -> TraceRequest {
        TraceRequest {
            target: format!("/cgi-bin/adl?id={id}&ms={live_ms}"),
            kind: RequestKind::Dynamic,
            service_micros,
        }
    }

    /// A static file request.
    pub fn file(path: &str, service_micros: u64) -> TraceRequest {
        TraceRequest {
            target: path.to_string(),
            kind: RequestKind::Static,
            service_micros,
        }
    }
}

/// A sequence of requests plus aggregate helpers.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub requests: Vec<TraceRequest>,
}

impl Trace {
    pub fn new(requests: Vec<TraceRequest>) -> Self {
        Trace { requests }
    }

    pub fn len(&self) -> usize {
        self.requests.len()
    }

    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Number of distinct targets.
    pub fn unique_targets(&self) -> usize {
        let mut seen = std::collections::HashSet::with_capacity(self.requests.len());
        for r in &self.requests {
            seen.insert(r.target.as_str());
        }
        seen.len()
    }

    /// Requests minus uniques = the theoretical upper bound on cache hits
    /// with infinite capacity (§5.3: "by counting the exact number of
    /// unique requests and repeats, we know how many cache hits are
    /// theoretically possible on a cache of infinite size").
    pub fn upper_bound_hits(&self) -> usize {
        self.len() - self.unique_targets()
    }

    /// Total service time in microseconds.
    pub fn total_service_micros(&self) -> u64 {
        self.requests.iter().map(|r| r.service_micros).sum()
    }

    /// Count and total time of dynamic requests.
    pub fn dynamic_stats(&self) -> (usize, u64) {
        self.requests
            .iter()
            .filter(|r| r.kind == RequestKind::Dynamic)
            .fold((0, 0), |(n, t), r| (n + 1, t + r.service_micros))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::new(vec![
            TraceRequest::dynamic(1, 1_000_000, 25),
            TraceRequest::dynamic(2, 2_000_000, 50),
            TraceRequest::dynamic(1, 1_000_000, 25), // repeat
            TraceRequest::file("/index.html", 30_000),
        ])
    }

    #[test]
    fn aggregates() {
        let t = sample();
        assert_eq!(t.len(), 4);
        assert_eq!(t.unique_targets(), 3);
        assert_eq!(t.upper_bound_hits(), 1);
        assert_eq!(t.total_service_micros(), 4_030_000);
        let (n, micros) = t.dynamic_stats();
        assert_eq!(n, 3);
        assert_eq!(micros, 4_000_000);
    }

    #[test]
    fn dynamic_target_encodes_identity_and_cost() {
        let r = TraceRequest::dynamic(42, 1_600_000, 40);
        assert_eq!(r.target, "/cgi-bin/adl?id=42&ms=40");
        assert_eq!(r.kind, RequestKind::Dynamic);
    }

    #[test]
    fn identical_ids_share_targets() {
        let a = TraceRequest::dynamic(7, 10, 1);
        let b = TraceRequest::dynamic(7, 10, 1);
        assert_eq!(a.target, b.target);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.upper_bound_hits(), 0);
    }
}
