//! The `Program` trait and the request view handed to programs.

use crate::output::CgiOutput;
use std::io;
use swala_http::{Method, Request};

/// Everything a CGI program sees about the request that invoked it.
///
/// This is the decoded, program-facing view; the raw HTTP request stays in
/// the server. The fields mirror the CGI/1.1 meta-variables a forked
/// process would receive (see [`crate::env`]).
#[derive(Debug, Clone)]
pub struct CgiRequest {
    pub method: Method,
    /// Script path as requested, e.g. `/cgi-bin/mapserver`.
    pub script_name: String,
    /// Raw query string (still percent-encoded), empty if none.
    pub query_string: String,
    /// Decoded query pairs (`application/x-www-form-urlencoded` rules).
    pub query_pairs: Vec<(String, String)>,
    /// POST body, if any.
    pub body: Vec<u8>,
    /// Client address string for `REMOTE_ADDR`.
    pub remote_addr: String,
    /// Server identity for `SERVER_NAME`/`SERVER_PORT`.
    pub server_name: String,
    pub server_port: u16,
}

impl CgiRequest {
    /// Build the program-facing view from a parsed HTTP request.
    pub fn from_http(
        req: &Request,
        remote_addr: &str,
        server_name: &str,
        server_port: u16,
    ) -> Self {
        CgiRequest {
            method: req.method,
            script_name: req.target.path.clone(),
            query_string: req.target.query.clone().unwrap_or_default(),
            query_pairs: req.target.query_pairs(),
            body: req.body.clone(),
            remote_addr: remote_addr.to_string(),
            server_name: server_name.to_string(),
            server_port,
        }
    }

    /// First value of a decoded query parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query_pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parse an integer query parameter, `None` if absent or malformed.
    pub fn param_u64(&self, key: &str) -> Option<u64> {
        self.param(key).and_then(|v| v.parse().ok())
    }
}

/// A dynamic-content program the server can invoke.
///
/// Programs must be deterministic functions of the [`CgiRequest`] when they
/// are registered as cacheable — the whole premise of result caching (§4.2
/// "strong content consistency requires that if the CGI is to execute
/// again, the new result is identical to the cached result").
pub trait Program: Send + Sync {
    /// Execute the program and produce its output.
    ///
    /// Errors map to `500 Internal Server Error`; per Figure 2, failed
    /// executions are never inserted into the cache.
    fn run(&self, req: &CgiRequest) -> io::Result<CgiOutput>;

    /// Human-readable name for logs and stats.
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request(target: &str) -> CgiRequest {
        let req = Request::get(target).unwrap();
        CgiRequest::from_http(&req, "127.0.0.1:9", "node0", 8080)
    }

    #[test]
    fn from_http_extracts_fields() {
        let c = sample_request("/cgi-bin/map?x=1&y=two");
        assert_eq!(c.script_name, "/cgi-bin/map");
        assert_eq!(c.query_string, "x=1&y=two");
        assert_eq!(c.param("x"), Some("1"));
        assert_eq!(c.param("y"), Some("two"));
        assert_eq!(c.param("z"), None);
        assert_eq!(c.server_port, 8080);
    }

    #[test]
    fn param_u64_parses() {
        let c = sample_request("/cgi-bin/p?t=250&bad=xy");
        assert_eq!(c.param_u64("t"), Some(250));
        assert_eq!(c.param_u64("bad"), None);
        assert_eq!(c.param_u64("missing"), None);
    }

    #[test]
    fn no_query_is_empty_string() {
        let c = sample_request("/cgi-bin/p");
        assert_eq!(c.query_string, "");
        assert!(c.query_pairs.is_empty());
    }
}
