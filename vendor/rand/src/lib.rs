//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! Implements the subset the workspace uses: `Rng::{random,
//! random_range}` over integer/float ranges, `SeedableRng::seed_from_u64`
//! and `rngs::StdRng`. The generator is xoshiro256++ seeded through
//! SplitMix64 — not cryptographic, but high-quality and deterministic,
//! which is all the workloads and simulators here need.

use std::ops::{Range, RangeInclusive};

/// Core generator trait (object-safe part).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] as in the real crate.
pub trait Rng: RngCore {
    /// Uniform sample of the whole domain of `T` (`f64` is in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform sample within `range`. Panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: IntoUniformRange<T>,
    {
        let (low, high_incl) = range.bounds();
        T::sample_in(self, low, high_incl)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types `Rng::random` can produce.
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*}
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types `Rng::random_range` can sample.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_incl: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: $t, high_incl: $t) -> $t {
                assert!(low <= high_incl, "empty range");
                let span = (high_incl as i128 - low as i128) as u128 + 1;
                // Multiply-shift bounded sampling; the tiny modulo bias of
                // plain `% span` is irrelevant for workloads but easy to
                // avoid with 128-bit arithmetic.
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (low as i128 + v as i128) as $t
            }
        }
    )*}
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: f64, high_incl: f64) -> f64 {
        assert!(low <= high_incl, "empty range");
        low + f64::from_rng(rng) * (high_incl - low)
    }
}

/// Range forms accepted by `random_range`, normalized to inclusive
/// bounds.
pub trait IntoUniformRange<T> {
    fn bounds(self) -> (T, T);
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl IntoUniformRange<$t> for Range<$t> {
            fn bounds(self) -> ($t, $t) {
                assert!(self.start < self.end, "empty range");
                (self.start, self.end - 1)
            }
        }
        impl IntoUniformRange<$t> for RangeInclusive<$t> {
            fn bounds(self) -> ($t, $t) {
                (*self.start(), *self.end())
            }
        }
    )*}
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl IntoUniformRange<f64> for Range<f64> {
    fn bounds(self) -> (f64, f64) {
        (self.start, self.end)
    }
}

impl IntoUniformRange<f64> for RangeInclusive<f64> {
    fn bounds(self) -> (f64, f64) {
        (*self.start(), *self.end())
    }
}

/// Deterministic seeding, as in the real crate.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator (stand-in for rand's `StdRng`; the real one
    /// is ChaCha12 — callers here only rely on determinism per seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..10);
            assert!((3..10).contains(&v));
            let w: u64 = rng.random_range(0..=4);
            assert!(w <= 4);
            let f: f64 = rng.random_range(0.0..2.0);
            assert!((0.0..2.0).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn full_u8_range_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[rng.random_range(0u8..=255) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
