//! A small keep-alive HTTP client, used by tests, examples and the
//! WebStone-style load generator.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;
use swala_http::{HttpError, Request, Response};

/// One persistent client connection.
pub struct HttpClient {
    addr: SocketAddr,
    conn: Option<Conn>,
    timeout: Duration,
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Client for `addr`; connects lazily on first request.
    pub fn new(addr: SocketAddr) -> Self {
        HttpClient {
            addr,
            conn: None,
            timeout: Duration::from_secs(30),
        }
    }

    /// Override the per-operation socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    fn connect(&self) -> io::Result<Conn> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let writer = stream.try_clone()?;
        Ok(Conn {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send `req` and read the response, reconnecting once if the
    /// keep-alive connection has gone stale.
    pub fn request(&mut self, req: &Request) -> Result<Response, HttpError> {
        if self.conn.is_none() {
            self.conn = Some(self.connect()?);
        }
        match self.roundtrip(req) {
            Ok(resp) => Ok(resp),
            Err(_) => {
                // Stale keep-alive (server closed between requests):
                // reconnect and retry exactly once.
                self.conn = Some(self.connect()?);
                self.roundtrip(req)
            }
        }
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, HttpError> {
        let conn = self.conn.as_mut().expect("connected");
        use std::io::Write;
        conn.writer.write_all(&req.to_bytes())?;
        conn.writer.flush()?;
        // HEAD responses advertise a Content-Length but carry no body.
        let expect_body = req.method.response_has_body();
        let resp = Response::read_from_expecting(&mut conn.reader, expect_body)?;
        if !resp.headers.keep_alive(resp.version) {
            self.conn = None;
        }
        Ok(resp)
    }

    /// Convenience: GET `target` and return the response.
    pub fn get(&mut self, target: &str) -> Result<Response, HttpError> {
        self.request(&Request::get(target)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    /// Minimal canned server: answers every request with `body`, honoring
    /// keep-alive, for `max_requests` requests per connection.
    fn canned_server(body: &'static str, max_requests: usize) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { return };
                let body = body.to_string();
                std::thread::spawn(move || {
                    let mut writer = stream.try_clone().unwrap();
                    let mut reader = BufReader::new(stream);
                    for served in 0.. {
                        let Ok(req) = swala_http::read_request(&mut reader) else {
                            return;
                        };
                        let keep = req.keep_alive() && served + 1 < max_requests;
                        let mut resp = Response::ok("text/plain", body.clone());
                        resp.set_keep_alive(keep);
                        if resp.write_to(&mut writer, true).is_err() {
                            return;
                        }
                        if !keep {
                            let _ = writer.flush();
                            return;
                        }
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn get_roundtrip() {
        let addr = canned_server("hello-client", usize::MAX);
        let mut c = HttpClient::new(addr);
        let resp = c.get("/x").unwrap();
        assert_eq!(resp.body, b"hello-client");
    }

    #[test]
    fn keep_alive_reuses_connection() {
        let addr = canned_server("ka", usize::MAX);
        let mut c = HttpClient::new(addr);
        for _ in 0..5 {
            assert_eq!(c.get("/x").unwrap().body, b"ka");
        }
        assert!(c.conn.is_some(), "connection retained across requests");
    }

    #[test]
    fn reconnects_when_server_closes_between_requests() {
        // Server closes after every single request.
        let addr = canned_server("once", 1);
        let mut c = HttpClient::new(addr);
        assert_eq!(c.get("/a").unwrap().body, b"once");
        assert_eq!(c.get("/b").unwrap().body, b"once");
        assert_eq!(c.get("/c").unwrap().body, b"once");
    }

    #[test]
    fn connection_refused_is_error() {
        let mut c = HttpClient::new("127.0.0.1:1".parse().unwrap())
            .with_timeout(Duration::from_millis(200));
        assert!(c.get("/x").is_err());
    }
}
