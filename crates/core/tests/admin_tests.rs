//! End-to-end tests for the extension features: the status page,
//! application-driven invalidation, conditional GET, source monitoring
//! and join-time directory sync.

use std::sync::Arc;
use std::time::{Duration, Instant};
use swala::monitor::MonitorRule;
use swala::{BoundSwala, HttpClient, ServerOptions, SwalaServer};
use swala_cache::NodeId;
use swala_cgi::{ProgramRegistry, SimulatedProgram, WorkKind};
use swala_http::{Method, Request, StatusCode};

fn registry() -> ProgramRegistry {
    let mut r = ProgramRegistry::new();
    r.register(Arc::new(SimulatedProgram::trace_driven(
        "adl",
        WorkKind::Sleep,
    )));
    r
}

fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timeout: {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn two_node_cluster() -> Vec<SwalaServer> {
    let bounds: Vec<BoundSwala> = (0..2)
        .map(|i| {
            BoundSwala::bind(
                ServerOptions {
                    node: NodeId(i),
                    num_nodes: 2,
                    pool_size: 4,
                    ..Default::default()
                },
                registry(),
            )
            .unwrap()
        })
        .collect();
    let addrs: Vec<_> = bounds.iter().map(|b| Some(b.cache_addr())).collect();
    bounds
        .into_iter()
        .map(|b| b.start(addrs.clone()).unwrap())
        .collect()
}

#[test]
fn status_page_reports_stats() {
    let server = SwalaServer::start_single(
        ServerOptions {
            pool_size: 2,
            ..Default::default()
        },
        registry(),
    )
    .unwrap();
    let mut client = HttpClient::new(server.http_addr());
    client.get("/cgi-bin/adl?id=1&ms=1").unwrap();
    client.get("/cgi-bin/adl?id=1&ms=1").unwrap();

    let page = client.get("/swala-status").unwrap();
    assert_eq!(page.status, StatusCode::OK);
    let html = String::from_utf8(page.body.into_vec()).unwrap();
    assert!(html.contains("Swala node node0"), "{html}");
    assert!(html.contains("hits=1"), "cache hit visible: {html}");
    assert!(html.contains("this node"));
    server.shutdown();
}

#[test]
fn status_page_reports_per_link_broadcast_counters() {
    let servers = two_node_cluster();
    let mut c0 = HttpClient::new(servers[0].http_addr());
    c0.get("/cgi-bin/adl?id=77&ms=1").unwrap();
    wait_until("notice delivered to node 1", || {
        servers[1].manager().directory().len(NodeId(0)) == 1
    });

    let page = c0.get("/swala-status").unwrap();
    let html = String::from_utf8(page.body.into_vec()).unwrap();
    assert!(html.contains("Broadcast links"), "{html}");
    // One row for the single peer, with the insert notice counted sent
    // and nothing dropped.
    assert!(html.contains("<td>node1</td>"), "{html}");
    assert!(html.contains("(1 sent, 0 dropped)"), "{html}");
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn invalidate_local_entry_over_http() {
    let server = SwalaServer::start_single(
        ServerOptions {
            pool_size: 2,
            ..Default::default()
        },
        registry(),
    )
    .unwrap();
    let mut client = HttpClient::new(server.http_addr());
    client.get("/cgi-bin/adl?id=5&ms=1").unwrap();
    assert_eq!(server.manager().directory().len(NodeId(0)), 1);

    // Invalidate via the admin endpoint (key percent-encoded).
    let resp = client
        .get("/swala-admin/invalidate?key=%2Fcgi-bin%2Fadl%3Fid%3D5%26ms%3D1")
        .unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    assert!(String::from_utf8(resp.body.into_vec())
        .unwrap()
        .contains("invalidated local entry"));
    assert_eq!(server.manager().directory().len(NodeId(0)), 0);

    // Next request re-executes.
    let r = client.get("/cgi-bin/adl?id=5&ms=1").unwrap();
    assert_eq!(r.headers.get("X-Swala-Cache"), Some("miss"));
    server.shutdown();
}

#[test]
fn invalidate_forwards_to_remote_owner() {
    let servers = two_node_cluster();
    let mut c0 = HttpClient::new(servers[0].http_addr());
    c0.get("/cgi-bin/adl?id=9&ms=1").unwrap();
    wait_until("replication to node 1", || {
        servers[1].manager().directory().len(NodeId(0)) == 1
    });

    // Ask node 1 (non-owner) to invalidate: it forwards to node 0, which
    // deletes and broadcasts; eventually both directories are clean.
    let mut c1 = HttpClient::new(servers[1].http_addr());
    let resp = c1
        .get("/swala-admin/invalidate?key=%2Fcgi-bin%2Fadl%3Fid%3D9%26ms%3D1")
        .unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    assert!(String::from_utf8(resp.body.into_vec())
        .unwrap()
        .contains("forwarded to owner node0"));
    wait_until("owner dropped entry", || {
        servers[0].manager().directory().len(NodeId(0)) == 0
    });
    wait_until("delete broadcast applied", || {
        servers[1].manager().directory().len(NodeId(0)) == 0
    });
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn invalidate_requires_key_param_and_handles_absent_keys() {
    let server = SwalaServer::start_single(
        ServerOptions {
            pool_size: 2,
            ..Default::default()
        },
        registry(),
    )
    .unwrap();
    let mut client = HttpClient::new(server.http_addr());
    let resp = client.get("/swala-admin/invalidate").unwrap();
    assert_eq!(resp.status, StatusCode::BAD_REQUEST);
    let resp = client
        .get("/swala-admin/invalidate?key=%2Fnothing")
        .unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    assert!(String::from_utf8(resp.body.into_vec())
        .unwrap()
        .contains("no cached entry"));
    // Unknown admin path.
    let resp = client.get("/swala-admin/frobnicate").unwrap();
    assert_eq!(resp.status, StatusCode::NOT_FOUND);
    server.shutdown();
}

#[test]
fn conditional_get_over_http() {
    let root = std::env::temp_dir().join(format!("swala-ims-{}", std::process::id()));
    std::fs::create_dir_all(&root).unwrap();
    std::fs::write(root.join("doc.html"), "<p>doc</p>").unwrap();
    let server = SwalaServer::start_single(
        ServerOptions {
            docroot: Some(root.clone()),
            pool_size: 2,
            ..Default::default()
        },
        registry(),
    )
    .unwrap();
    let mut client = HttpClient::new(server.http_addr());

    let first = client.get("/doc.html").unwrap();
    assert_eq!(first.status, StatusCode::OK);
    let validator = first.headers.get("Last-Modified").unwrap().to_string();

    let mut revalidate = Request::new(Method::Get, "/doc.html").unwrap();
    revalidate.headers.set("If-Modified-Since", &validator);
    revalidate.headers.set("Connection", "keep-alive");
    let second = client.request(&revalidate).unwrap();
    assert_eq!(second.status.as_u16(), 304);
    assert!(second.body.is_empty());
    server.shutdown();
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn source_monitor_invalidates_through_live_server() {
    let dir = std::env::temp_dir().join(format!("swala-srvmon-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let source = dir.join("index.db");
    std::fs::write(&source, "v1").unwrap();

    let server = SwalaServer::start_single(
        ServerOptions {
            pool_size: 2,
            monitors: vec![MonitorRule {
                key_prefix: "/cgi-bin/adl".to_string(),
                source: source.clone(),
            }],
            monitor_interval: Duration::from_millis(40),
            ..Default::default()
        },
        registry(),
    )
    .unwrap();
    let mut client = HttpClient::new(server.http_addr());
    client.get("/cgi-bin/adl?id=3&ms=1").unwrap();
    let hit = client.get("/cgi-bin/adl?id=3&ms=1").unwrap();
    assert_eq!(hit.headers.get("X-Swala-Cache"), Some("local-hit"));

    std::thread::sleep(Duration::from_millis(60));
    std::fs::write(&source, "v2: reindexed").unwrap();
    wait_until("monitor invalidates", || {
        server.source_monitor().unwrap().invalidations() == 1
    });
    let after = client.get("/cgi-bin/adl?id=3&ms=1").unwrap();
    assert_eq!(after.headers.get("X-Swala-Cache"), Some("miss"));
    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn late_joiner_syncs_directory() {
    // Node 0 starts alone (in a 2-slot cluster) and caches entries.
    let b0 = BoundSwala::bind(
        ServerOptions {
            node: NodeId(0),
            num_nodes: 2,
            pool_size: 2,
            ..Default::default()
        },
        registry(),
    )
    .unwrap();
    let addr0 = b0.cache_addr();
    let s0 = b0.start(vec![Some(addr0), None]).unwrap();
    let mut c0 = HttpClient::new(s0.http_addr());
    for i in 0..4 {
        c0.get(&format!("/cgi-bin/adl?id={i}&ms=1")).unwrap();
    }

    // Node 1 joins later with sync_on_join: it learns all 4 entries at
    // startup instead of waiting for future notices.
    let b1 = BoundSwala::bind(
        ServerOptions {
            node: NodeId(1),
            num_nodes: 2,
            pool_size: 2,
            sync_on_join: true,
            ..Default::default()
        },
        registry(),
    )
    .unwrap();
    let addr1 = b1.cache_addr();
    let s1 = b1.start(vec![Some(addr0), Some(addr1)]).unwrap();
    assert_eq!(s1.manager().directory().len(NodeId(0)), 4, "synced at join");
    s0.set_peer_cache_addr(NodeId(1), addr1);

    // And it can serve those entries as remote hits immediately.
    let mut c1 = HttpClient::new(s1.http_addr());
    let r = c1.get("/cgi-bin/adl?id=0&ms=1").unwrap();
    assert_eq!(r.headers.get("X-Swala-Cache"), Some("remote-hit"));
    s0.shutdown();
    s1.shutdown();
}
