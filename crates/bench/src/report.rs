//! Plain-text table rendering for experiment reports.

use std::fmt;

/// One experiment's output: headers, rows, and free-form notes.
#[derive(Debug, Clone)]
pub struct TableReport {
    /// Experiment id (`table1`, `fig3`...).
    pub id: String,
    /// Human title (usually the paper's caption).
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// Notes printed under the table (paper comparison, caveats).
    pub notes: Vec<String>,
}

impl TableReport {
    pub fn new(id: &str, title: &str, headers: &[&str]) -> TableReport {
        TableReport {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row; must match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in {}",
            self.id
        );
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for TableReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        let widths = self.widths();
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let rendered: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            writeln!(f, "  {}", rendered.join("  "))
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, "  {}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

/// Format a millisecond quantity with sensible precision.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 10.0 {
        format!("{ms:.1}")
    } else {
        format!("{ms:.2}")
    }
}

/// Format a percentage.
pub fn fmt_pct(p: f64) -> String {
    format!("{p:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TableReport::new("t", "Demo", &["col", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-cell".into(), "22".into()]);
        t.note("a note");
        let text = t.to_string();
        assert!(text.contains("== t — Demo =="));
        assert!(text.contains("long-cell"));
        assert!(text.contains("note: a note"));
        // Line layout: title, headers, separator, rows...
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[2].contains("---"), "separator line");
        assert!(
            lines[3].ends_with(" 1"),
            "right-aligned value cell: {:?}",
            lines[3]
        );
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = TableReport::new("t", "Demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_ms(123.456), "123");
        assert_eq!(fmt_ms(12.34), "12.3");
        assert_eq!(fmt_ms(1.234), "1.23");
        assert_eq!(fmt_pct(73.61), "73.6%");
    }
}
