//! Quickstart: one Swala node, a few dynamic requests, and the cache in
//! action.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};
use swala::{HttpClient, ProgramRegistry, ServerOptions, SimulatedProgram, SwalaServer, WorkKind};

fn main() -> std::io::Result<()> {
    // 1. Register a dynamic-content program. `trace_driven` programs
    //    read their cost from the query string (`ms=`), so one program
    //    models any CGI of the Alexandria Digital Library variety.
    let mut registry = ProgramRegistry::new();
    registry.register(Arc::new(SimulatedProgram::trace_driven(
        "search",
        WorkKind::Spin,
    )));

    // 2. Start a single node on an ephemeral port.
    let server = SwalaServer::start_single(ServerOptions::default(), registry)?;
    println!("swala listening on http://{}", server.http_addr());

    // 3. The first request executes the program (a ~80 ms "spatial query").
    let mut client = HttpClient::new(server.http_addr());
    let target = "/cgi-bin/search?region=santa-barbara&layer=3&ms=80";

    let t0 = Instant::now();
    let first = client.get(target).expect("first request");
    let miss_time = t0.elapsed();
    println!(
        "miss : {} in {:>7.1?}  [X-Swala-Cache: {}]",
        first.status,
        miss_time,
        first.headers.get("X-Swala-Cache").unwrap_or("-")
    );

    // 4. The second request is served from the result cache.
    let t1 = Instant::now();
    let second = client.get(target).expect("second request");
    let hit_time = t1.elapsed();
    println!(
        "hit  : {} in {:>7.1?}  [X-Swala-Cache: {}]",
        second.status,
        hit_time,
        second.headers.get("X-Swala-Cache").unwrap_or("-")
    );
    assert_eq!(first.body, second.body, "cached result is byte-identical");
    assert!(hit_time < miss_time);

    // 5. Statistics mirror what happened.
    println!("cache: {}", server.cache_stats());
    println!("http : {}", server.request_stats());
    assert!(hit_time < Duration::from_millis(80));

    server.shutdown();
    println!(
        "ok: cache hit was {:.0}x faster than execution",
        miss_time.as_secs_f64() / hit_time.as_secs_f64().max(1e-9)
    );
    Ok(())
}
