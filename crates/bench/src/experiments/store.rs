//! Segment-store gates: content-digest dedup and kill -9 crash safety.
//!
//! Two headline guarantees of the crash-safe segment log, exercised
//! end-to-end and recorded in `BENCH_store.json` for CI:
//!
//! 1. **Dedup gate** — 100 keys sharing one body hold a single body copy
//!    on disk (plus per-key index records); `store_dedup_hits` accounts
//!    for the other 99. The JSON records actual segment bytes next to
//!    what the one-file-per-entry store would have used.
//! 2. **Crash gate** — a child process (`tables store-child <dir>`, a
//!    hidden subcommand) inserts durably-acked entries in a tight loop
//!    until this process SIGKILLs it mid-write. Reopening the store must
//!    serve *every* acked entry byte-identical, and a warm restart
//!    through `CacheManager::recover_from_store` must hit on every acked
//!    key with the memory tier pre-warmed — the post-restart hit rate
//!    equals the pre-kill steady state (1.0) instead of a cold-cache 0.
//!
//! A compaction pass over the dedup store (delete half the keys, compact)
//! closes the loop: dead bytes are reclaimed, survivors still read back.

use crate::report::TableReport;
use crate::scale;
use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};
use swala_cache::store::HeaderMeta;
use swala_cache::{
    CacheKey, CacheManager, CacheManagerConfig, CacheRules, LookupResult, NodeId, PolicyKind,
    SegmentConfig, SegmentStore, Store,
};

fn meta() -> HeaderMeta {
    HeaderMeta {
        content_type: "text/html".into(),
        exec_micros: 1000,
        expires_unix: None,
        created_unix: 1,
    }
}

/// The crash-test child's i-th key (a cacheable CGI target so the warm
/// restart can replay it through the manager's hit path).
fn crash_key(i: usize) -> CacheKey {
    CacheKey::new(format!("/cgi-bin/adl?id=crash{i}"))
}

/// The crash-test child's i-th body — deterministic, so the parent can
/// verify byte-identity without any channel beyond the ack stream.
fn crash_body(i: usize) -> Vec<u8> {
    let mut b = format!("crash-body-{i}:").into_bytes();
    b.extend((0..200).map(|j| (i.wrapping_mul(31).wrapping_add(j) & 0xff) as u8));
    b
}

/// `tables store-child <dir>`: insert durably-acked entries until killed.
/// Each "acked N" line is printed only after the put (fsync on) returned,
/// so every acked entry must survive SIGKILL. Never returns normally in
/// the crash drill — the parent kills it mid-loop.
pub fn run_child(dir: &str) {
    let store = SegmentStore::open_with(
        dir,
        SegmentConfig {
            // Small segments so the kill lands in a multi-segment log.
            segment_bytes: 16 * 1024,
            fsync: true,
            ..SegmentConfig::default()
        },
    )
    .expect("child: open store");
    let stdout = std::io::stdout();
    for i in 0..1_000_000 {
        store
            .put_described(&crash_key(i), &meta(), &crash_body(i))
            .expect("child: durable put");
        let mut out = stdout.lock();
        writeln!(out, "acked {i}").expect("child: ack");
        out.flush().expect("child: flush");
    }
}

/// Sum of segment-log bytes under `dir`.
fn segment_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .expect("read store dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "swseg"))
        .map(|e| e.metadata().map(|m| m.len()).unwrap_or(0))
        .sum()
}

struct DedupOutcome {
    keys: usize,
    bodies: u64,
    dedup_hits: u64,
    body_bytes: usize,
    disk_bytes: u64,
    files_equivalent: u64,
}

fn dedup_gate(dir: &std::path::Path) -> DedupOutcome {
    let _ = std::fs::remove_dir_all(dir);
    let store = SegmentStore::open_with(
        dir,
        SegmentConfig {
            fsync: false,
            ..SegmentConfig::default()
        },
    )
    .expect("open dedup store");
    let body: Vec<u8> = (0..4096).map(|i| (i & 0xff) as u8).collect();
    let keys = 100;
    for i in 0..keys {
        store
            .put_described(
                &CacheKey::new(format!("/cgi-bin/adl?id=dup{i}")),
                &meta(),
                &body,
            )
            .expect("dedup put");
    }
    let m = store.metrics();
    assert_eq!(m.bodies, 1, "one body on disk for {keys} sharing keys");
    assert_eq!(
        m.dedup_hits,
        keys as u64 - 1,
        "dedup hits account for every key but the first"
    );
    let disk_bytes = segment_bytes(dir);
    // The hard bound: one body copy plus bounded per-key index records —
    // far below the files store's keys × body_len.
    assert!(
        disk_bytes < body.len() as u64 + keys as u64 * 256,
        "segment log holds more than one body copy: {disk_bytes} bytes"
    );
    for i in 0..keys {
        let got = store
            .get(&CacheKey::new(format!("/cgi-bin/adl?id=dup{i}")))
            .expect("dedup read");
        assert_eq!(got, body, "shared body reads back for key {i}");
    }
    DedupOutcome {
        keys,
        bodies: m.bodies,
        dedup_hits: m.dedup_hits,
        body_bytes: body.len(),
        disk_bytes,
        files_equivalent: keys as u64 * body.len() as u64,
    }
}

struct CompactionOutcome {
    dead_before: u64,
    dead_after: u64,
    compactions: u64,
    compacted_bytes: u64,
}

fn compaction_pass(dir: &std::path::Path, dedup: &DedupOutcome) -> CompactionOutcome {
    let store = SegmentStore::open_with(
        dir,
        SegmentConfig {
            fsync: false,
            ..SegmentConfig::default()
        },
    )
    .expect("reopen dedup store");
    for i in 0..dedup.keys / 2 {
        store
            .delete(&CacheKey::new(format!("/cgi-bin/adl?id=dup{i}")))
            .expect("delete");
    }
    let dead_before = store.metrics().dead_bytes;
    store.compact().expect("compact");
    let m = store.metrics();
    assert!(m.compactions >= 1, "compaction ran");
    assert!(
        m.dead_bytes < dead_before,
        "compaction reclaimed dead bytes ({} -> {})",
        dead_before,
        m.dead_bytes
    );
    // Survivors still read back after their records were rewritten.
    let body: Vec<u8> = (0..4096).map(|i| (i & 0xff) as u8).collect();
    for i in dedup.keys / 2..dedup.keys {
        let got = store
            .get(&CacheKey::new(format!("/cgi-bin/adl?id=dup{i}")))
            .expect("post-compaction read");
        assert_eq!(got, body, "survivor {i} intact after compaction");
    }
    CompactionOutcome {
        dead_before,
        dead_after: m.dead_bytes,
        compactions: m.compactions,
        compacted_bytes: m.compacted_bytes,
    }
}

struct CrashOutcome {
    acked: usize,
    recovered: usize,
    warm_hit_rate: f64,
    mem_tier_hits: u64,
}

fn crash_gate(dir: &std::path::Path, target_acks: usize) -> CrashOutcome {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).expect("create crash dir");
    let exe = std::env::current_exe().expect("current exe");
    let mut child = Command::new(exe)
        .arg("store-child")
        .arg(dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn store-child");
    let reader = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut acked = 0usize;
    for line in reader.lines() {
        let line = line.expect("child ack line");
        if let Some(n) = line.strip_prefix("acked ") {
            let n: usize = n.trim().parse().expect("ack number");
            assert_eq!(n, acked, "acks arrive in order");
            acked += 1;
            if acked >= target_acks {
                break;
            }
        }
    }
    // SIGKILL mid-write: no destructors, no flush, no goodbye.
    child.kill().expect("kill -9 store-child");
    let _ = child.wait();
    assert!(acked >= target_acks, "child died early at {acked} acks");

    // Warm restart through the full manager: directory rebuilt from the
    // log, memory tier pre-warmed. Every acked key must be a local hit.
    let manager = CacheManager::new(
        CacheManagerConfig {
            num_nodes: 1,
            local: NodeId(0),
            capacity: 1_000_000,
            policy: PolicyKind::Lru,
            rules: CacheRules::allow_all(),
            mem_cache_bytes: 64 * 1024 * 1024,
            ..Default::default()
        },
        Box::new(SegmentStore::open(dir).expect("reopen after kill")),
    );
    let recovered = manager.recover_from_store();
    assert!(
        recovered >= acked,
        "acked entries lost: {recovered} recovered < {acked} acked"
    );
    let mut hits = 0usize;
    for i in 0..acked {
        let k = crash_key(i);
        match manager.lookup(&k, k.as_str()) {
            LookupResult::LocalHit { body, .. } => {
                assert_eq!(
                    &body[..],
                    &crash_body(i)[..],
                    "acked entry {i} not byte-identical after kill -9"
                );
                hits += 1;
            }
            other => {
                manager.abort_execution(&k);
                panic!("acked entry {i} missing after restart: {other:?}");
            }
        }
    }
    let stats = manager.stats().snapshot();
    // Pre-kill steady state: every acked key served from cache (rate
    // 1.0). The warm restart must match it, not restart cold.
    let warm_hit_rate = hits as f64 / acked as f64;
    assert_eq!(warm_hit_rate, 1.0, "warm restart hit rate != pre-kill 1.0");
    assert_eq!(
        stats.mem_hits, acked as u64,
        "recovery must pre-warm the memory tier (zero store reads on the hit path)"
    );
    CrashOutcome {
        acked,
        recovered,
        warm_hit_rate,
        mem_tier_hits: stats.mem_hits,
    }
}

pub fn run() -> TableReport {
    let quick = scale::quick();
    let target_acks = if quick { 40 } else { 200 };
    let base = std::env::temp_dir().join(format!("swala-store-bench-{}", std::process::id()));
    let dedup_dir = base.join("dedup");
    let crash_dir = base.join("crash");

    let dedup = dedup_gate(&dedup_dir);
    let compaction = compaction_pass(&dedup_dir, &dedup);
    let crash = crash_gate(&crash_dir, target_acks);

    let json = format!(
        "{{\n  \"experiment\": \"store\",\n  \"quick\": {quick},\n  \"dedup\": {{\n    \
         \"keys\": {}, \"bodies_on_disk\": {}, \"dedup_hits\": {}, \"body_bytes\": {},\n    \
         \"segment_disk_bytes\": {}, \"files_store_equivalent_bytes\": {}\n  }},\n  \
         \"compaction\": {{\n    \"dead_bytes_before\": {}, \"dead_bytes_after\": {},\n    \
         \"compactions\": {}, \"compacted_bytes\": {}\n  }},\n  \"crash\": {{\n    \
         \"acked\": {}, \"recovered\": {}, \"byte_identical\": true,\n    \
         \"pre_kill_hit_rate\": 1.0, \"warm_hit_rate\": {:.1}, \"mem_tier_hits\": {}\n  }}\n}}\n",
        dedup.keys,
        dedup.bodies,
        dedup.dedup_hits,
        dedup.body_bytes,
        dedup.disk_bytes,
        dedup.files_equivalent,
        compaction.dead_before,
        compaction.dead_after,
        compaction.compactions,
        compaction.compacted_bytes,
        crash.acked,
        crash.recovered,
        crash.warm_hit_rate,
        crash.mem_tier_hits,
    );
    std::fs::write("BENCH_store.json", &json).expect("write BENCH_store.json");

    let mut report = TableReport::new(
        "store",
        "Segment store: digest dedup, compaction, and kill -9 crash safety",
        &["gate", "result"],
    );
    report.row(vec![
        "dedup (100 keys, one body)".into(),
        format!(
            "{} bytes on disk vs {} one-file-per-entry ({} dedup hits)",
            dedup.disk_bytes, dedup.files_equivalent, dedup.dedup_hits
        ),
    ]);
    report.row(vec![
        "compaction".into(),
        format!(
            "dead bytes {} -> {} ({} reclaimed)",
            compaction.dead_before, compaction.dead_after, compaction.compacted_bytes
        ),
    ]);
    report.row(vec![
        "kill -9 + warm restart".into(),
        format!(
            "{} acked, {} recovered, hit rate {:.1} (mem tier: {})",
            crash.acked, crash.recovered, crash.warm_hit_rate, crash.mem_tier_hits
        ),
    ]);
    report.note("every durably-acked entry served byte-identical after SIGKILL mid-write");
    report.note(
        "warm restart hit rate equals the pre-kill steady state (1.0) — no cold-cache window",
    );
    report.note("results written to BENCH_store.json");

    let _ = std::fs::remove_dir_all(base);
    report
}
