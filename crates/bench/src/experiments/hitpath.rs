//! Hot-path latency: what a hit costs once the hit path is zero-copy.
//!
//! The paper's value proposition (Tables 4–6, Figure 3) is that serving
//! a cached document is much cheaper than re-executing the CGI. This
//! experiment measures the three ways a request can resolve on a live
//! two-node cluster — warm local hit (memory tier, no disk, no copy),
//! remote hit (pooled fetch connection, no TCP handshake), and miss
//! (full CGI execution + store insert) — plus the no-cache baseline
//! where every request executes. Alongside the latency distributions it
//! checks the zero-copy machinery's own counters: warm hits must not
//! read the store, and a burst of remote hits from one client must not
//! open more connections than the pool allows.
//!
//! The distributions are appended to `BENCH_hitpath.json` (handwritten
//! JSON, no serde in the tree) so later PRs have a trajectory to defend.
//! Since the telemetry PR the report also carries each node's own
//! per-outcome histogram quantiles (what `/swala-metrics` would show)
//! and an overhead guard: the warm-local-hit median with telemetry on
//! must stay within 3% (plus a 30 µs timer-jitter floor) of an
//! `obs_enabled: false` run of the same scenario.

use crate::report::{fmt_ms, TableReport};
use crate::scale;
use std::time::{Duration, Instant};
use swala::HttpClient;
use swala_cluster::{ClusterConfig, SwalaCluster};
use swala_obs::Outcome;

/// Telemetry-overhead tolerance: 3% relative…
const OVERHEAD_REL: f64 = 0.03;
/// …plus an absolute floor for scheduler/timer jitter at the µs scale.
const OVERHEAD_FLOOR_MS: f64 = 0.030;

/// One scenario's latency distribution, in milliseconds.
struct Dist {
    mean: f64,
    p50: f64,
    p95: f64,
}

fn dist(mut samples: Vec<f64>) -> Dist {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.total_cmp(b));
    let pick = |q: f64| samples[((samples.len() - 1) as f64 * q).round() as usize];
    Dist {
        mean: samples.iter().sum::<f64>() / samples.len() as f64,
        p50: pick(0.50),
        p95: pick(0.95),
    }
}

/// Time `n` requests produced by `target`, returning per-request ms.
fn timed(client: &mut HttpClient, n: usize, mut target: impl FnMut(usize) -> String) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = target(i);
            let t0 = Instant::now();
            let resp = client.get(&t).expect("request");
            assert!(resp.status.is_success(), "failed: {t}");
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect()
}

fn json_scenario(name: &str, d: &Dist) -> String {
    format!(
        "    \"{name}\": {{\"mean_ms\": {:.4}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}}}",
        d.mean, d.p50, d.p95
    )
}

pub fn run() -> TableReport {
    let quick = scale::quick();
    let samples = if quick { 60 } else { 300 };
    let work_ms: u64 = if quick { 3 } else { 10 };

    let base = std::env::temp_dir().join(format!("swala-hitpath-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let cluster = SwalaCluster::start(&ClusterConfig {
        nodes: 2,
        cache_dir_base: Some(base.clone()),
        ..Default::default()
    })
    .expect("start cluster");

    let target = format!("/cgi-bin/adl?id=1&ms={work_ms}");
    let mut c0 = HttpClient::new(cluster.node(0).http_addr());
    let mut c1 = HttpClient::new(cluster.node(1).http_addr());
    c0.get(&target).expect("warm");
    assert!(cluster.wait_for_directory_convergence(1, Duration::from_secs(10)));

    // Warm local hits: the memory tier must serve every one of them
    // without touching the disk store.
    let reads_before = cluster.node(0).cache_stats().store_reads;
    let local = dist(timed(&mut c0, samples, |_| target.clone()));
    let stats0 = cluster.node(0).cache_stats();
    assert!(
        stats0.mem_hits >= samples as u64,
        "warm hits must come from the memory tier: {stats0:?}"
    );
    let store_reads_during_hits = stats0.store_reads - reads_before;
    assert_eq!(store_reads_during_hits, 0, "warm hits must not read disk");

    // Remote hits: one client bursting through the fetch pool.
    let remote = dist(timed(&mut c1, samples, |_| target.clone()));
    let pool = cluster.node(1).fetch_pool_stats();
    let pool_size = ClusterConfig::default().fetch_pool_size as u64;
    assert!(
        pool.connects_opened <= pool_size,
        "one client must stay within the pool: {pool}"
    );

    // Misses: unique documents, full CGI execution + insert each.
    let miss = dist(timed(&mut c0, samples, |i| {
        format!("/cgi-bin/adl?id=m{i}&ms={work_ms}")
    }));

    // The nodes' own view of the same traffic: per-outcome duration
    // histograms, exactly what `/swala-metrics` exposes.
    let hist_local = cluster
        .node(0)
        .telemetry()
        .outcome_snapshot(Outcome::LocalMem);
    let hist_miss = cluster.node(0).telemetry().outcome_snapshot(Outcome::Miss);
    let hist_remote = cluster
        .node(1)
        .telemetry()
        .outcome_snapshot(Outcome::Remote);
    assert!(
        hist_local.count >= samples as u64,
        "local-mem histogram undercounts: {} < {samples}",
        hist_local.count
    );
    assert!(
        hist_remote.count >= samples as u64,
        "remote histogram undercounts: {} < {samples}",
        hist_remote.count
    );
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&base);

    // Telemetry-off twin of the warm-local-hit scenario: same cluster
    // shape, same key, `obs_enabled: false` — the cost of the telemetry
    // layer is the median gap between the two runs.
    let off_cluster = SwalaCluster::start(&ClusterConfig {
        nodes: 2,
        obs_enabled: false,
        ..Default::default()
    })
    .expect("start obs-off cluster");
    let mut coff = HttpClient::new(off_cluster.node(0).http_addr());
    coff.get(&target).expect("warm");
    let local_off = dist(timed(&mut coff, samples, |_| target.clone()));
    off_cluster.shutdown();
    let overhead_budget_ms = local_off.p50 * OVERHEAD_REL + OVERHEAD_FLOOR_MS;

    // No-cache baseline: the same document re-executes every time.
    let nocache_cluster = SwalaCluster::start(&ClusterConfig {
        nodes: 2,
        caching: false,
        ..Default::default()
    })
    .expect("start no-cache cluster");
    let mut cn = HttpClient::new(nocache_cluster.node(0).http_addr());
    cn.get(&target).expect("warm");
    let nocache = dist(timed(&mut cn, samples, |_| target.clone()));
    nocache_cluster.shutdown();

    let hist_json = |name: &str, h: &swala_obs::HistogramSnapshot| {
        format!(
            "    \"{name}\": {{\"count\": {}, \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
            h.count,
            h.p50(),
            h.p99(),
            h.max
        )
    };
    let json = format!(
        "{{\n  \"experiment\": \"hitpath\",\n  \"quick\": {quick},\n  \
         \"samples\": {samples},\n  \"work_ms\": {work_ms},\n  \"scenarios\": {{\n{},\n{},\n{},\n{},\n{}\n  }},\n  \
         \"telemetry\": {{\n{},\n{},\n{}\n  }},\n  \
         \"obs_overhead\": {{\"p50_on_ms\": {:.4}, \"p50_off_ms\": {:.4}, \
         \"budget_ms\": {overhead_budget_ms:.4}}},\n  \
         \"counters\": {{\"mem_hits\": {}, \"store_reads_during_hits\": {store_reads_during_hits}, \
         \"pool_connects\": {}, \"pool_reuses\": {}}}\n}}\n",
        json_scenario("local_hit", &local),
        json_scenario("remote_hit", &remote),
        json_scenario("miss", &miss),
        json_scenario("nocache_execute", &nocache),
        json_scenario("local_hit_obs_disabled", &local_off),
        hist_json("local_mem", &hist_local),
        hist_json("remote", &hist_remote),
        hist_json("miss", &hist_miss),
        local.p50,
        local_off.p50,
        stats0.mem_hits,
        pool.connects_opened,
        pool.reuses,
    );
    std::fs::write("BENCH_hitpath.json", &json).expect("write BENCH_hitpath.json");

    let mut report = TableReport::new(
        "hitpath",
        "Hot path: hit vs miss latency on a live two-node cluster",
        &["scenario", "mean", "p50", "p95"],
    );
    for (name, d) in [
        ("local hit (memory tier)", &local),
        ("local hit (telemetry off)", &local_off),
        ("remote hit (pooled fetch)", &remote),
        ("miss (execute + insert)", &miss),
        ("no-cache (execute always)", &nocache),
    ] {
        report.row(vec![
            name.into(),
            format!("{} ms", fmt_ms(d.mean)),
            format!("{} ms", fmt_ms(d.p50)),
            format!("{} ms", fmt_ms(d.p95)),
        ]);
    }
    assert!(
        local.mean < miss.mean && remote.mean < miss.mean,
        "hits must beat misses: local {} remote {} miss {}",
        local.mean,
        remote.mean,
        miss.mean
    );
    report.note(format!(
        "hit speedup over miss: local {:.1}x, remote {:.1}x (work_ms={work_ms})",
        miss.mean / local.mean,
        miss.mean / remote.mean,
    ));
    report.note(format!(
        "zero-copy evidence: {} warm hits, 0 store reads; {} remote fetches over {} connections",
        stats0.mem_hits, pool.reuses, pool.connects_opened,
    ));
    assert!(
        local.p50 <= local_off.p50 + overhead_budget_ms,
        "telemetry overhead too high on the warm hit path: p50 {:.4} ms with obs, \
         {:.4} ms without (budget {:.4} ms)",
        local.p50,
        local_off.p50,
        overhead_budget_ms
    );
    report.note(format!(
        "telemetry overhead on warm hits: p50 {:.3} ms on vs {:.3} ms off (budget {:.3} ms = 3% + 30us floor)",
        local.p50, local_off.p50, overhead_budget_ms,
    ));
    report.note(format!(
        "node histograms: local-mem p50/p99 {}/{} us ({} obs), remote {}/{} us ({} obs)",
        hist_local.p50(),
        hist_local.p99(),
        hist_local.count,
        hist_remote.p50(),
        hist_remote.p99(),
        hist_remote.count,
    ));
    report.note("distributions written to BENCH_hitpath.json");
    report
}
