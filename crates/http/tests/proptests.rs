//! Property-based tests for the HTTP substrate: the parser must round-trip
//! everything the serializer emits, never panic on arbitrary input, and the
//! URI normalizer must be idempotent and traversal-safe.

use proptest::prelude::*;
use std::io::BufReader;
use swala_http::{read_request, Method, Request, RequestTarget, Response, StatusCode};

/// Path segments that are valid unencoded URI characters.
fn segment() -> impl Strategy<Value = String> {
    // "." and ".." are normalized away by the parser, so exclude pure-dot
    // segments from the round-trip identity property.
    proptest::string::string_regex("[A-Za-z0-9_.~-]{1,12}")
        .unwrap()
        .prop_filter("dot segments normalize away", |s| {
            !s.chars().all(|c| c == '.')
        })
}

fn simple_path() -> impl Strategy<Value = String> {
    proptest::collection::vec(segment(), 1..5).prop_map(|segs| format!("/{}", segs.join("/")))
}

fn query() -> impl Strategy<Value = Option<String>> {
    proptest::option::of(
        proptest::collection::vec(("[a-z]{1,6}", "[A-Za-z0-9]{0,8}"), 1..4).prop_map(|pairs| {
            pairs
                .into_iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join("&")
        }),
    )
}

proptest! {
    #[test]
    fn request_roundtrip(path in simple_path(), q in query(), body in proptest::collection::vec(any::<u8>(), 0..256)) {
        let target = match &q {
            Some(q) => format!("{path}?{q}"),
            None => path.clone(),
        };
        let mut req = Request::new(Method::Post, &target).unwrap();
        req.body = body.clone();
        req.headers.set("Host", "prop");
        let parsed = read_request(&mut BufReader::new(&req.to_bytes()[..])).unwrap();
        prop_assert_eq!(parsed.target.path, path);
        prop_assert_eq!(parsed.target.query, q);
        prop_assert_eq!(parsed.body, body);
    }

    #[test]
    fn parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Outcome may be Ok or Err; it must never panic.
        let _ = read_request(&mut BufReader::new(&bytes[..]));
    }

    #[test]
    fn target_parse_never_panics(s in "\\PC{0,64}") {
        let _ = RequestTarget::parse(&s);
    }

    #[test]
    fn normalization_is_idempotent(path in simple_path(), dots in proptest::collection::vec(prop_oneof![Just("."), Just(".."), Just("x")], 0..4)) {
        // Build a messy path; if it parses, reparsing its normal form must
        // be a fixpoint.
        let messy = format!("{}/{}", path, dots.join("/"));
        if let Ok(t) = RequestTarget::parse(&messy) {
            let again = RequestTarget::parse(&t.path).unwrap();
            prop_assert_eq!(&again.path, &t.path);
            // Normalized paths never contain traversal segments.
            prop_assert!(!t.path.split('/').any(|s| s == ".." || s == "."));
        }
    }

    #[test]
    fn response_roundtrip(status in 200u16..600, body in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut r = Response::ok("application/octet-stream", body.clone());
        r.status = StatusCode(status);
        let parsed = Response::read_from(&mut BufReader::new(&r.to_bytes()[..])).unwrap();
        prop_assert_eq!(parsed.status.as_u16(), status);
        prop_assert_eq!(parsed.body, body);
    }

    #[test]
    fn cache_key_stable_under_reparse(path in simple_path(), q in query()) {
        let target = match &q { Some(q) => format!("{path}?{q}"), None => path.clone() };
        let t1 = RequestTarget::parse(&target).unwrap();
        let t2 = RequestTarget::parse(&t1.cache_key_string()).unwrap();
        prop_assert_eq!(t1.cache_key_string(), t2.cache_key_string());
    }
}
