//! Outgoing peer links and the cluster broadcaster.
//!
//! §4.2: "updates are done asynchronously among the nodes without any
//! global locks" — a node never waits for its notices to be delivered.
//! This module takes that literally: each peer gets a dedicated **writer
//! thread** fed by a bounded queue, and [`Broadcaster::broadcast`] is a
//! non-blocking enqueue of one shared pre-encoded buffer. The request
//! path therefore pays O(peers) pointer pushes per broadcast — never a
//! connect, a syscall, or a retransmit — regardless of how many peers
//! are slow, dead, or blackholed.
//!
//! Writer threads coalesce whatever has queued since their last write
//! into a single [`Message::Batch`] frame (up to `batch_max`
//! sub-messages, optionally waiting `batch_window` for stragglers), so a
//! node under load amortizes framing and syscalls across many notices.
//!
//! Backpressure is **drop-oldest**: when a queue is full the oldest
//! notice is discarded and counted in the link's `dropped` counter. The
//! weak-consistency protocol tolerates lost notices by design — the
//! worst case is a false miss or false hit — so shedding load beats
//! blocking the request path. Reconnection happens on the writer thread
//! with exponential backoff, off the request path entirely.

use crate::message::{encode_batch, Message};
use crate::wire::{write_frame, ProtoError, MAX_FRAME};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use swala_cache::NodeId;

/// How a writer thread opens a TCP connection. The target peer's
/// [`NodeId`] is passed first so fault rules can match by destination.
/// Injectable so tests can simulate blackholed peers (connects that
/// hang, then fail) without depending on unroutable addresses.
pub type Connector =
    Arc<dyn Fn(NodeId, SocketAddr, Duration) -> io::Result<TcpStream> + Send + Sync>;

/// Tuning for the asynchronous broadcast pipeline.
#[derive(Clone)]
pub struct BroadcastConfig {
    /// Bounded queue depth per link; overflow drops the oldest notice.
    pub queue_depth: usize,
    /// Max sub-messages coalesced into one `Batch` frame.
    pub batch_max: usize,
    /// How long a writer lingers for more notices after the first one is
    /// available. Zero (the default) coalesces opportunistically: only
    /// what queued while the previous write was in flight.
    pub batch_window: Duration,
    /// TCP connect timeout for (re)connection attempts.
    pub connect_timeout: Duration,
    /// Connection factory (tests inject failures/delays here).
    pub connector: Connector,
}

impl Default for BroadcastConfig {
    fn default() -> Self {
        BroadcastConfig {
            queue_depth: 1024,
            batch_max: 64,
            batch_window: Duration::ZERO,
            connect_timeout: Duration::from_millis(500),
            connector: Arc::new(|_peer, addr, timeout| TcpStream::connect_timeout(&addr, timeout)),
        }
    }
}

impl std::fmt::Debug for BroadcastConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BroadcastConfig")
            .field("queue_depth", &self.queue_depth)
            .field("batch_max", &self.batch_max)
            .field("batch_window", &self.batch_window)
            .field("connect_timeout", &self.connect_timeout)
            .finish_non_exhaustive()
    }
}

/// Observable state of one link, for the admin page and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkStats {
    pub peer: NodeId,
    pub addr: SocketAddr,
    /// Notices written to the socket.
    pub sent: u64,
    /// Payload bytes of delivered notices (framing overhead excluded) —
    /// what the directory bench measures as "directory wire bytes".
    pub sent_bytes: u64,
    /// Notices dropped: queue overflow, failed delivery, or shutdown.
    pub dropped: u64,
    /// Notices currently queued.
    pub queued: usize,
    /// Whether the writer currently holds a live connection.
    pub connected: bool,
}

struct Queue {
    buf: VecDeque<Arc<[u8]>>,
    /// Writer has taken a batch it has not finished delivering.
    in_flight: bool,
    shutting_down: bool,
}

struct LinkShared {
    addr: SocketAddr,
    peer: NodeId,
    local: NodeId,
    cfg: BroadcastConfig,
    queue: Mutex<Queue>,
    /// Signaled on enqueue and shutdown; writer waits here.
    ready: Condvar,
    /// Signaled when the pipeline quiesces; `flush` waits here.
    idle: Condvar,
    sent: AtomicU64,
    sent_bytes: AtomicU64,
    dropped: AtomicU64,
    connected: AtomicBool,
}

/// Persistent notice link to one peer, serviced by its own writer thread.
pub struct PeerLink {
    shared: Arc<LinkShared>,
    writer: Mutex<Option<JoinHandle<()>>>,
}

impl PeerLink {
    /// Create a link with default tuning (connection happens on the
    /// writer thread, on first delivery).
    pub fn new(local: NodeId, peer: NodeId, addr: SocketAddr) -> Self {
        Self::with_config(local, peer, addr, BroadcastConfig::default())
    }

    /// Create a link with explicit tuning.
    pub fn with_config(
        local: NodeId,
        peer: NodeId,
        addr: SocketAddr,
        cfg: BroadcastConfig,
    ) -> Self {
        let shared = Arc::new(LinkShared {
            addr,
            peer,
            local,
            cfg,
            queue: Mutex::new(Queue {
                buf: VecDeque::new(),
                in_flight: false,
                shutting_down: false,
            }),
            ready: Condvar::new(),
            idle: Condvar::new(),
            sent: AtomicU64::new(0),
            sent_bytes: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            connected: AtomicBool::new(false),
        });
        let writer = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("swala-notice-writer".into())
                .spawn(move || writer_loop(&shared))
                .expect("spawn notice writer")
        };
        PeerLink {
            shared,
            writer: Mutex::new(Some(writer)),
        }
    }

    /// Peer node id.
    pub fn peer(&self) -> NodeId {
        self.shared.peer
    }

    /// Peer address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Notices written / dropped so far.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.shared.sent.load(Ordering::Relaxed),
            self.shared.dropped.load(Ordering::Relaxed),
        )
    }

    /// Snapshot of this link's observable state.
    pub fn stats(&self) -> LinkStats {
        let queued = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .buf
            .len();
        LinkStats {
            peer: self.shared.peer,
            addr: self.shared.addr,
            sent: self.shared.sent.load(Ordering::Relaxed),
            sent_bytes: self.shared.sent_bytes.load(Ordering::Relaxed),
            dropped: self.shared.dropped.load(Ordering::Relaxed),
            queued,
            connected: self.shared.connected.load(Ordering::Relaxed),
        }
    }

    /// Queue a notice for delivery. Returns immediately: `Ok` means the
    /// notice was accepted (enqueued), not that it was delivered —
    /// delivery is asynchronous and best-effort. `Err` only after
    /// shutdown.
    pub fn send(&self, msg: &Message) -> io::Result<()> {
        if self.enqueue_frame(msg.encode().into()) {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "peer link shut down",
            ))
        }
    }

    /// Queue a pre-encoded frame payload (the broadcast fast path: one
    /// encode shared across every link). Drop-oldest on overflow.
    pub fn enqueue_frame(&self, frame: Arc<[u8]>) -> bool {
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if q.shutting_down {
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        if q.buf.len() >= self.shared.cfg.queue_depth {
            q.buf.pop_front();
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
        }
        q.buf.push_back(frame);
        drop(q);
        self.shared.ready.notify_one();
        true
    }

    /// Wait until every queued notice has been handed to the socket (or
    /// dropped). `false` on timeout.
    pub fn flush(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        while !q.buf.is_empty() || q.in_flight {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .shared
                .idle
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
        true
    }

    /// Signal shutdown, drain what can still be delivered, and join the
    /// writer thread. Idempotent.
    pub fn shutdown(&self) {
        self.signal_shutdown();
        self.join_writer();
    }

    fn signal_shutdown(&self) {
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.shutting_down = true;
        drop(q);
        self.shared.ready.notify_all();
    }

    fn join_writer(&self) {
        let handle = self.writer.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

impl Drop for PeerLink {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Writer thread: wait for notices, coalesce, deliver; reconnect with
/// backoff on failure. On shutdown, drain the queue to a live peer; one
/// failed delivery during shutdown abandons the rest (bounded effort).
fn writer_loop(shared: &LinkShared) {
    let mut stream: Option<TcpStream> = None;
    let mut backoff = Duration::from_millis(25);
    loop {
        let Some(batch) = next_batch(shared) else {
            return; // shutdown with an empty queue
        };
        match deliver(shared, &mut stream, &batch) {
            Ok(()) => {
                shared.sent.fetch_add(batch.len() as u64, Ordering::Relaxed);
                let bytes: u64 = batch.iter().map(|b| b.len() as u64).sum();
                shared.sent_bytes.fetch_add(bytes, Ordering::Relaxed);
                backoff = Duration::from_millis(25);
                finish_batch(shared);
            }
            Err(_) => {
                shared
                    .dropped
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                stream = None;
                shared.connected.store(false, Ordering::Relaxed);
                finish_batch(shared);
                let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                if q.shutting_down {
                    // The peer is gone and we are shutting down: count
                    // the rest as dropped rather than timing out per
                    // batch (bounded-effort drain).
                    shared
                        .dropped
                        .fetch_add(q.buf.len() as u64, Ordering::Relaxed);
                    q.buf.clear();
                    drop(q);
                    shared.idle.notify_all();
                    return;
                }
                // Back off before the next connect attempt; wake early on
                // shutdown so drains stay prompt.
                let (guard, _) = shared
                    .ready
                    .wait_timeout(q, backoff)
                    .unwrap_or_else(|e| e.into_inner());
                drop(guard);
                backoff = (backoff * 2).min(Duration::from_secs(1));
            }
        }
    }
}

/// Block until notices are queued (or shutdown with nothing left), then
/// take up to `batch_max`, optionally lingering `batch_window` first.
fn next_batch(shared: &LinkShared) -> Option<Vec<Arc<[u8]>>> {
    let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        if !q.buf.is_empty() {
            break;
        }
        if q.shutting_down {
            return None;
        }
        q = shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
    }
    let window = shared.cfg.batch_window;
    if !window.is_zero() && !q.shutting_down && q.buf.len() < shared.cfg.batch_max {
        let deadline = Instant::now() + window;
        while !q.shutting_down && q.buf.len() < shared.cfg.batch_max {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) = shared
                .ready
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
    }
    let n = q.buf.len().min(shared.cfg.batch_max);
    let batch: Vec<Arc<[u8]>> = q.buf.drain(..n).collect();
    q.in_flight = true;
    Some(batch)
}

fn finish_batch(shared: &LinkShared) {
    let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
    q.in_flight = false;
    if q.buf.is_empty() {
        drop(q);
        shared.idle.notify_all();
    }
}

/// Write one batch, (re)connecting as needed. A single message goes out
/// as its own frame; several are coalesced into `Batch` frames (split if
/// a combined payload would exceed the frame limit). On a write error
/// the writer reconnects once and retries the whole batch — notices are
/// idempotent, so a duplicate after a partial delivery is harmless.
fn deliver(
    shared: &LinkShared,
    stream: &mut Option<TcpStream>,
    batch: &[Arc<[u8]>],
) -> io::Result<()> {
    if stream.is_none() {
        *stream = Some(connect(shared)?);
        shared.connected.store(true, Ordering::Relaxed);
    }
    let s = stream.as_mut().expect("just connected");
    match write_batch(s, batch) {
        Ok(()) => Ok(()),
        Err(_) => {
            // The common failure is a peer restart having closed the old
            // connection: reconnect once and retry.
            shared.connected.store(false, Ordering::Relaxed);
            let mut s = connect(shared)?;
            write_batch(&mut s, batch).map_err(to_io)?;
            *stream = Some(s);
            shared.connected.store(true, Ordering::Relaxed);
            Ok(())
        }
    }
}

fn write_batch<W: io::Write>(out: &mut W, batch: &[Arc<[u8]>]) -> Result<(), ProtoError> {
    // Split so no coalesced frame exceeds the limit (notices are tiny,
    // so in practice this is one frame per call).
    let budget = MAX_FRAME / 2;
    let mut start = 0;
    while start < batch.len() {
        let mut end = start;
        let mut size = 0usize;
        while end < batch.len() && (end == start || size + batch[end].len() + 4 <= budget) {
            size += batch[end].len() + 4;
            end += 1;
        }
        if end - start == 1 {
            write_frame(out, &batch[start])?;
        } else {
            write_frame(out, &encode_batch(&batch[start..end]))?;
        }
        start = end;
    }
    Ok(())
}

fn connect(shared: &LinkShared) -> io::Result<TcpStream> {
    let mut stream = (shared.cfg.connector)(shared.peer, shared.addr, shared.cfg.connect_timeout)?;
    stream.set_nodelay(true)?;
    write_frame(&mut stream, &Message::Hello { node: shared.local }.encode()).map_err(to_io)?;
    Ok(stream)
}

fn to_io(e: ProtoError) -> io::Error {
    match e {
        ProtoError::Io(e) => e,
        other => io::Error::other(other.to_string()),
    }
}

/// All of a node's outgoing links; fan-out lives here.
pub struct Broadcaster {
    links: Vec<PeerLink>,
}

impl Broadcaster {
    /// Build links from `local` to every `(peer, addr)` pair with default
    /// tuning.
    pub fn new(local: NodeId, peers: impl IntoIterator<Item = (NodeId, SocketAddr)>) -> Self {
        Self::with_config(local, peers, BroadcastConfig::default())
    }

    /// Build links with explicit tuning.
    pub fn with_config(
        local: NodeId,
        peers: impl IntoIterator<Item = (NodeId, SocketAddr)>,
        cfg: BroadcastConfig,
    ) -> Self {
        Broadcaster {
            links: peers
                .into_iter()
                .map(|(peer, addr)| PeerLink::with_config(local, peer, addr, cfg.clone()))
                .collect(),
        }
    }

    /// A broadcaster with no peers (single-node operation).
    pub fn solo() -> Self {
        Broadcaster { links: Vec::new() }
    }

    /// Number of peers.
    pub fn peer_count(&self) -> usize {
        self.links.len()
    }

    /// Queue `msg` to every peer; returns how many links accepted it.
    ///
    /// The message is encoded exactly once; every link queues the same
    /// shared buffer. This never blocks on the network — delivery,
    /// reconnection and failure handling all happen on the writer
    /// threads, and drops are recorded in the per-link counters
    /// (asynchronous weak consistency, §4.2).
    ///
    /// Zero-recipient fast path: with no links (single-node cluster, or
    /// partitioned mode keeping its notices point-to-point) the call
    /// returns before encoding anything.
    pub fn broadcast(&self, msg: &Message) -> usize {
        if self.links.is_empty() {
            return 0;
        }
        let frame: Arc<[u8]> = msg.encode().into();
        self.links
            .iter()
            .filter(|l| l.enqueue_frame(Arc::clone(&frame)))
            .count()
    }

    /// Queue `msg` to exactly one peer — the partitioned directory's
    /// home-node update path, which bypasses the broadcast fan-out.
    ///
    /// The link is located *before* the message is encoded, so a
    /// recipient this node has no link to (itself, or an out-of-cluster
    /// id) costs nothing. Returns `false` when no such link exists or
    /// the link is shut down.
    pub fn send_to(&self, peer: NodeId, msg: &Message) -> bool {
        let Some(link) = self.links.iter().find(|l| l.peer() == peer) else {
            return false;
        };
        link.enqueue_frame(msg.encode().into())
    }

    /// Aggregate (sent, dropped) counters across links.
    pub fn counters(&self) -> (u64, u64) {
        self.links.iter().fold((0, 0), |(s, d), l| {
            let (ls, ld) = l.counters();
            (s + ls, d + ld)
        })
    }

    /// Per-link observable state, for the admin page.
    pub fn link_stats(&self) -> Vec<LinkStats> {
        self.links.iter().map(PeerLink::stats).collect()
    }

    /// Wait until every link's queue has quiesced. `false` on timeout.
    pub fn flush(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        self.links.iter().all(|l| {
            let now = Instant::now();
            l.flush(deadline.saturating_duration_since(now))
        })
    }

    /// Drain queued notices to live peers, then stop and join every
    /// writer thread. Links drain concurrently (shutdown is signaled to
    /// all links before any join).
    pub fn shutdown(&self) {
        for l in &self.links {
            l.signal_shutdown();
        }
        for l in &self.links {
            l.join_writer();
        }
    }
}

impl Drop for Broadcaster {
    fn drop(&mut self) {
        // Signal everything first so links drain in parallel; each
        // PeerLink's own Drop then joins its writer.
        for l in &self.links {
            l.signal_shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::read_frame;
    use std::net::TcpListener;

    /// Accept `n` connections, collecting every message until each peer
    /// disconnects; returns all messages received (batches flattened,
    /// with a count of batch frames seen).
    fn collecting_listener(
        n: usize,
    ) -> (SocketAddr, std::thread::JoinHandle<(Vec<Message>, usize)>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let mut all = Vec::new();
            let mut batches = 0;
            for _ in 0..n {
                let (mut s, _) = listener.accept().unwrap();
                while let Ok(Some(frame)) = read_frame(&mut s) {
                    match Message::decode(&frame).unwrap() {
                        Message::Batch(msgs) => {
                            batches += 1;
                            all.extend(msgs);
                        }
                        m => all.push(m),
                    }
                }
            }
            (all, batches)
        });
        (addr, handle)
    }

    fn wait_until(what: &str, cond: impl Fn() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while !cond() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn link_sends_hello_then_notices() {
        let (addr, handle) = collecting_listener(1);
        let link = PeerLink::new(NodeId(0), NodeId(1), addr);
        link.send(&Message::Ping).unwrap();
        link.send(&Message::Pong).unwrap();
        assert!(link.flush(Duration::from_secs(5)));
        assert_eq!(link.counters(), (2, 0));
        drop(link); // joins the writer, closing the stream
        let (msgs, _) = handle.join().unwrap();
        assert_eq!(msgs[0], Message::Hello { node: NodeId(0) });
        assert_eq!(&msgs[1..], &[Message::Ping, Message::Pong]);
    }

    #[test]
    fn unreachable_peer_counts_drops_off_the_send_path() {
        // Port 1 on localhost: connection refused immediately. The send
        // itself still succeeds — it is an enqueue — and the failure is
        // recorded asynchronously by the writer.
        let link = PeerLink::new(NodeId(0), NodeId(1), "127.0.0.1:1".parse().unwrap());
        link.send(&Message::Ping).unwrap();
        wait_until("drop counted", || link.counters() == (0, 1));
    }

    #[test]
    fn send_returns_before_any_connect_attempt() {
        // Blackholed peer: connects hang for the full timeout, then fail.
        let attempts = Arc::new(AtomicU64::new(0));
        let cfg = BroadcastConfig {
            connect_timeout: Duration::from_millis(300),
            connector: {
                let attempts = Arc::clone(&attempts);
                Arc::new(move |_peer, _addr, timeout| {
                    attempts.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(timeout);
                    Err(io::Error::new(io::ErrorKind::TimedOut, "blackhole"))
                })
            },
            ..Default::default()
        };
        let link = PeerLink::with_config(NodeId(0), NodeId(1), "127.0.0.1:1".parse().unwrap(), cfg);
        let t0 = Instant::now();
        for _ in 0..100 {
            link.send(&Message::Ping).unwrap();
        }
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_millis(100),
            "100 sends took {elapsed:?} against a blackholed peer"
        );
        wait_until("blackhole probed", || attempts.load(Ordering::SeqCst) >= 1);
        link.shutdown();
        let (sent, dropped) = link.counters();
        assert_eq!(sent, 0);
        assert_eq!(dropped, 100);
    }

    #[test]
    fn queue_overflow_drops_oldest() {
        // Writer can never deliver (refused instantly), so the queue
        // fills; keep the depth tiny to force overflow deterministically.
        let cfg = BroadcastConfig {
            queue_depth: 4,
            connect_timeout: Duration::from_millis(10),
            // Stalls long enough for every send below to land while the
            // writer is stuck connecting; never succeeds.
            connector: Arc::new(|_peer, _addr, _t| {
                std::thread::sleep(Duration::from_secs(1));
                Err(io::Error::new(io::ErrorKind::TimedOut, "never"))
            }),
            ..Default::default()
        };
        let link = PeerLink::with_config(NodeId(0), NodeId(1), "127.0.0.1:1".parse().unwrap(), cfg);
        for _ in 0..20 {
            link.send(&Message::Ping).unwrap();
        }
        let stats = link.stats();
        assert!(stats.queued <= 4 + 1, "queued {}", stats.queued);
        assert!(stats.dropped >= 20 - 4 - 1, "dropped {}", stats.dropped);
    }

    #[test]
    fn writer_coalesces_into_batch_frames() {
        let (addr, handle) = collecting_listener(1);
        let cfg = BroadcastConfig {
            batch_window: Duration::from_millis(100),
            ..Default::default()
        };
        let link = PeerLink::with_config(NodeId(0), NodeId(1), addr, cfg);
        for i in 0..10u16 {
            link.send(&Message::Hello { node: NodeId(i) }).unwrap();
        }
        assert!(link.flush(Duration::from_secs(5)));
        assert_eq!(link.counters().0, 10);
        drop(link);
        let (msgs, batches) = handle.join().unwrap();
        // Connection hello + 10 notices, coalesced into at least one
        // real batch frame (the window gathers all ten).
        assert_eq!(msgs.len(), 11);
        assert!(batches >= 1, "no batch frames seen");
    }

    #[test]
    fn link_reconnects_after_peer_restart() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let link = PeerLink::new(NodeId(0), NodeId(1), addr);

        // First connection: accept, read hello+ping, then drop (restart).
        let reconnected = Arc::new(AtomicBool::new(false));
        let t = {
            let reconnected = Arc::clone(&reconnected);
            std::thread::spawn(move || {
                {
                    let (mut s, _) = listener.accept().unwrap();
                    let _ = read_frame(&mut s).unwrap(); // hello
                    let _ = read_frame(&mut s).unwrap(); // ping
                                                         // connection dropped here
                }
                // "Restarted" peer accepts again and reads everything.
                let (mut s, _) = listener.accept().unwrap();
                reconnected.store(true, Ordering::SeqCst);
                let mut msgs = Vec::new();
                while let Ok(Some(f)) = read_frame(&mut s) {
                    match Message::decode(&f).unwrap() {
                        Message::Batch(inner) => msgs.extend(inner),
                        m => msgs.push(m),
                    }
                }
                msgs
            })
        };

        link.send(&Message::Ping).unwrap();
        assert!(link.flush(Duration::from_secs(5)));
        // Keep sending until a write actually fails over to the restarted
        // peer (buffered writes to the half-closed socket can succeed
        // until the RST comes back).
        std::thread::sleep(Duration::from_millis(50));
        wait_until("reconnect to restarted peer", || {
            link.send(&Message::Pong).unwrap();
            link.flush(Duration::from_secs(1));
            reconnected.load(Ordering::SeqCst)
        });
        drop(link);
        let msgs = t.join().unwrap();
        assert!(
            msgs.contains(&Message::Hello { node: NodeId(0) }),
            "re-hello on reconnect"
        );
    }

    #[test]
    fn broadcaster_fans_out_one_encode() {
        let (addr_a, ha) = collecting_listener(1);
        let (addr_b, hb) = collecting_listener(1);
        let b = Broadcaster::new(NodeId(0), [(NodeId(1), addr_a), (NodeId(2), addr_b)]);
        assert_eq!(b.peer_count(), 2);
        assert_eq!(b.broadcast(&Message::Ping), 2);
        assert!(b.flush(Duration::from_secs(5)));
        assert_eq!(b.counters().0, 2);
        drop(b);
        for h in [ha, hb] {
            let (msgs, _) = h.join().unwrap();
            assert_eq!(msgs.len(), 2); // hello + ping
            assert_eq!(msgs[1], Message::Ping);
        }
    }

    #[test]
    fn broadcast_partial_failure_counts_drops() {
        let (addr_ok, h) = collecting_listener(1);
        let b = Broadcaster::new(
            NodeId(0),
            [
                (NodeId(1), addr_ok),
                (NodeId(2), "127.0.0.1:1".parse().unwrap()),
            ],
        );
        // Both links accept the enqueue; the dead peer's failure shows up
        // asynchronously in the counters.
        assert_eq!(b.broadcast(&Message::Ping), 2);
        let deadline = Instant::now() + Duration::from_secs(5);
        while b.counters() != (1, 1) {
            assert!(Instant::now() < deadline, "counters {:?}", b.counters());
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = b.link_stats();
        assert_eq!((stats[0].sent, stats[0].dropped), (1, 0));
        assert_eq!((stats[1].sent, stats[1].dropped), (0, 1));
        drop(b);
        h.join().unwrap();
    }

    #[test]
    fn shutdown_drains_queued_notices_to_live_peers() {
        let (addr, handle) = collecting_listener(1);
        let b = Broadcaster::new(NodeId(0), [(NodeId(1), addr)]);
        for i in 0..50u16 {
            b.broadcast(&Message::Hello { node: NodeId(i) });
        }
        // No flush: shutdown itself must deliver everything queued.
        b.shutdown();
        assert_eq!(b.counters(), (50, 0));
        drop(b);
        let (msgs, _) = handle.join().unwrap();
        assert_eq!(msgs.len(), 51, "connection hello + 50 notices");
    }

    #[test]
    fn sends_after_shutdown_fail() {
        let link = PeerLink::new(NodeId(0), NodeId(1), "127.0.0.1:1".parse().unwrap());
        link.shutdown();
        assert!(link.send(&Message::Ping).is_err());
        link.shutdown(); // idempotent
    }

    #[test]
    fn send_to_targets_exactly_one_peer() {
        // Peer 1 must stay silent, so its listener expects zero
        // connections (links dial lazily, on first delivery).
        let (addr_a, ha) = collecting_listener(0);
        let (addr_b, hb) = collecting_listener(1);
        let b = Broadcaster::new(NodeId(0), [(NodeId(1), addr_a), (NodeId(2), addr_b)]);
        assert!(b.send_to(NodeId(2), &Message::Ping));
        // Unknown peer (including the local node): nothing queued, no
        // encode — the call just reports false.
        assert!(!b.send_to(NodeId(0), &Message::Ping));
        assert!(!b.send_to(NodeId(9), &Message::Ping));
        assert!(b.flush(Duration::from_secs(5)));
        let stats = b.link_stats();
        assert_eq!(stats[0].sent, 0, "peer 1 heard nothing");
        assert_eq!(stats[1].sent, 1, "peer 2 got the message");
        assert_eq!(
            stats[1].sent_bytes,
            Message::Ping.encode().len() as u64,
            "payload bytes accounted on the delivering link"
        );
        drop(b);
        let (msgs_a, _) = ha.join().unwrap();
        let (msgs_b, _) = hb.join().unwrap();
        assert!(msgs_a.is_empty());
        assert_eq!(
            msgs_b,
            vec![Message::Hello { node: NodeId(0) }, Message::Ping]
        );
    }

    #[test]
    fn solo_broadcaster_is_a_noop() {
        let b = Broadcaster::solo();
        assert_eq!(b.peer_count(), 0);
        assert_eq!(b.broadcast(&Message::Ping), 0);
        assert!(b.flush(Duration::from_millis(10)));
        b.shutdown();
    }
}
