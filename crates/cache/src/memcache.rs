//! Bounded in-memory body tier layered over the [`Store`](crate::store::Store).
//!
//! The paper stores every cached body as a file and leans on the OS page
//! cache to make repeat fetches cheap. That still costs an `open` +
//! `read` + allocation per hit. This tier keeps the hottest bodies in
//! memory as `Arc<[u8]>` so a warm local hit performs **zero syscalls
//! and zero copies**: the response holds a clone of the `Arc`, not a
//! duplicate buffer.
//!
//! Bodies are keyed by their content [`Digest`]: keys map to digests and
//! digests map (refcounted) to the actual bytes, so N keys sharing one
//! body hold a single allocation and the byte budget counts it once.
//! [`MemCache::insert`] reports when an insert deduplicated against a
//! resident body, feeding the `mem_dedup_hits` counter.
//!
//! The tier is strictly a read accelerator — the disk store stays the
//! source of truth. Writes go through ([`MemCache::insert`] happens on
//! the same path as `Store::put_described`), and every directory-visible
//! removal (delete, eviction, expiry, self-heal) is mirrored here by the
//! `CacheManager`. A lookup consults the directory before this tier, so
//! a body can never be served after its directory entry is gone.
//!
//! Eviction is LRU over a *byte* budget (the directory's entry-count
//! capacity is about metadata; body bytes are what memory pressure is
//! made of). Evicting a key only releases bytes once no other key
//! references the same body. Bodies larger than the whole budget are
//! simply not admitted — they stay disk-only rather than wiping the
//! tier (unless the bytes are already resident via another key, in
//! which case sharing them is free).

use crate::digest::Digest;
use crate::key::CacheKey;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use swala_obs::Gauge;

/// A bounded-bytes LRU map of cache bodies, deduplicated by digest.
pub struct MemCache {
    budget: usize,
    /// Resident bytes — a shared [`Gauge`] rather than a plain field so
    /// the metrics registry reads the live value and debug builds catch
    /// any double-decrement. Only mutated under `inner`'s lock, so the
    /// gauge is always consistent with `bodies`. Counts each unique
    /// body once, however many keys share it.
    bytes: Arc<Gauge>,
    inner: Mutex<Inner>,
}

struct Inner {
    /// Key → (digest of its body, current recency stamp).
    entries: HashMap<CacheKey, (Digest, u64)>,
    /// Digest → (shared body, number of keys referencing it).
    bodies: HashMap<Digest, (Arc<[u8]>, usize)>,
    /// Recency order: lowest stamp = least recently used.
    recency: BTreeMap<u64, CacheKey>,
    /// Monotonic stamp source.
    tick: u64,
}

impl Inner {
    /// Drop `key`'s mapping (if any) and release its body reference.
    /// Returns the bytes freed (0 while other keys still share the body).
    fn unlink(&mut self, key: &CacheKey) -> u64 {
        let Some((digest, stamp)) = self.entries.remove(key) else {
            return 0;
        };
        self.recency.remove(&stamp);
        let (_, refs) = self.bodies.get_mut(&digest).expect("entry has a body");
        *refs -= 1;
        if *refs == 0 {
            let (body, _) = self.bodies.remove(&digest).expect("just seen");
            body.len() as u64
        } else {
            0
        }
    }
}

impl MemCache {
    /// A tier holding at most `budget` body bytes.
    pub fn new(budget: usize) -> MemCache {
        MemCache {
            budget,
            bytes: Arc::new(Gauge::new()),
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                bodies: HashMap::new(),
                recency: BTreeMap::new(),
                tick: 0,
            }),
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Fetch a body, marking its key most recently used.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<[u8]>> {
        let mut inner = self.inner.lock();
        let tick = inner.tick + 1;
        inner.tick = tick;
        let (digest, stamp) = inner.entries.get_mut(key)?;
        let digest = *digest;
        let old = std::mem::replace(stamp, tick);
        inner.recency.remove(&old);
        inner.recency.insert(tick, key.clone());
        let (body, _) = inner.bodies.get(&digest).expect("entry has a body");
        Some(Arc::clone(body))
    }

    /// Insert (or replace) a body, evicting least-recently-used keys
    /// until the budget holds. `digest` must be the digest of `body`
    /// (the caller has it from the write path; recomputing here would
    /// hash every populate twice).
    ///
    /// Returns `true` when the bytes were already resident via another
    /// key — a dedup hit: the insert cost an index entry, not a copy.
    pub fn insert(&self, key: &CacheKey, digest: Digest, body: Arc<[u8]>) -> bool {
        let mut inner = self.inner.lock();
        // Unlink any previous mapping first so a same-key replace
        // neither double-counts bytes nor reads as a dedup hit.
        let freed = inner.unlink(key);
        if freed > 0 {
            self.bytes.sub(freed);
        }
        let shared = inner.bodies.contains_key(&digest);
        let needed = if shared { 0 } else { body.len() };
        if needed > self.budget {
            return false;
        }
        while self.bytes.get() as usize + needed > self.budget {
            let Some((&oldest, _)) = inner.recency.iter().next() else {
                break;
            };
            let victim = inner.recency[&oldest].clone();
            let freed = inner.unlink(&victim);
            if freed > 0 {
                self.bytes.sub(freed);
            }
        }
        let tick = inner.tick + 1;
        inner.tick = tick;
        match inner.bodies.get_mut(&digest) {
            Some((_, refs)) => *refs += 1,
            None => {
                self.bytes.add(body.len() as u64);
                inner.bodies.insert(digest, (body, 1));
            }
        }
        inner.entries.insert(key.clone(), (digest, tick));
        inner.recency.insert(tick, key.clone());
        shared
    }

    /// Drop a key (entry deleted/evicted/expired in the directory). The
    /// body itself stays resident while other keys still share it.
    pub fn remove(&self, key: &CacheKey) {
        let mut inner = self.inner.lock();
        let freed = inner.unlink(key);
        if freed > 0 {
            self.bytes.sub(freed);
        }
    }

    /// Bytes currently held (lock-free: reads the gauge). Unique body
    /// bytes — shared bodies count once.
    pub fn bytes(&self) -> usize {
        self.bytes.get().max(0) as usize
    }

    /// Shared handle on the resident-bytes gauge, for registry hookup.
    pub fn bytes_gauge(&self) -> Arc<Gauge> {
        Arc::clone(&self.bytes)
    }

    /// Number of keys currently mapped.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Number of unique bodies resident (≤ [`len`](Self::len)).
    pub fn body_count(&self) -> usize {
        self.inner.lock().bodies.len()
    }

    /// Whether the tier is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> CacheKey {
        CacheKey::new(s)
    }

    fn body(s: &str) -> Arc<[u8]> {
        Arc::from(s.as_bytes())
    }

    fn insert(m: &MemCache, k: &CacheKey, b: Arc<[u8]>) -> bool {
        m.insert(k, Digest::of(&b), b)
    }

    #[test]
    fn insert_get_remove() {
        let m = MemCache::new(100);
        let k = key("/a");
        assert!(m.get(&k).is_none());
        insert(&m, &k, body("hello"));
        assert_eq!(m.bytes(), 5);
        assert_eq!(&m.get(&k).unwrap()[..], b"hello");
        m.remove(&k);
        assert!(m.get(&k).is_none());
        assert_eq!(m.bytes(), 0);
        // Removing again is harmless.
        m.remove(&k);
        assert!(m.is_empty());
    }

    #[test]
    fn get_returns_same_allocation() {
        let m = MemCache::new(100);
        let k = key("/a");
        let b = body("shared");
        insert(&m, &k, Arc::clone(&b));
        assert!(Arc::ptr_eq(&m.get(&k).unwrap(), &b));
    }

    #[test]
    fn evicts_lru_to_budget() {
        let m = MemCache::new(10);
        insert(&m, &key("/a"), body("aaaa")); // 4
        insert(&m, &key("/b"), body("bbbb")); // 8
                                              // Touch /a so /b becomes the LRU victim.
        m.get(&key("/a"));
        insert(&m, &key("/c"), body("cccc")); // would be 12 → evict /b
        assert!(m.get(&key("/b")).is_none());
        assert!(m.get(&key("/a")).is_some());
        assert!(m.get(&key("/c")).is_some());
        assert_eq!(m.bytes(), 8);
    }

    #[test]
    fn replace_updates_bytes() {
        let m = MemCache::new(10);
        let k = key("/a");
        insert(&m, &k, body("aaaa"));
        insert(&m, &k, body("bb"));
        assert_eq!(m.bytes(), 2);
        assert_eq!(m.len(), 1);
        assert_eq!(&m.get(&k).unwrap()[..], b"bb");
    }

    #[test]
    fn oversized_bodies_are_not_admitted() {
        let m = MemCache::new(4);
        insert(&m, &key("/small"), body("ok"));
        insert(&m, &key("/big"), body("too large for tier"));
        assert!(m.get(&key("/big")).is_none());
        // The resident small entry survives the rejected insert.
        assert!(m.get(&key("/small")).is_some());
        assert_eq!(m.bytes(), 2);
    }

    #[test]
    fn bytes_never_exceed_budget() {
        let m = MemCache::new(32);
        for i in 0..100 {
            insert(&m, &key(&format!("/k{i}")), body(&"x".repeat(1 + i % 9)));
            assert!(m.bytes() <= 32, "bytes {} over budget", m.bytes());
        }
    }

    #[test]
    fn shared_bodies_count_once_and_report_dedup() {
        let m = MemCache::new(100);
        let b = body("the one body");
        assert!(!insert(&m, &key("/a"), Arc::clone(&b)), "first copy is new");
        for i in 0..9 {
            assert!(
                insert(&m, &key(&format!("/dup{i}")), Arc::clone(&b)),
                "copy {i} should dedup"
            );
        }
        assert_eq!(m.len(), 10);
        assert_eq!(m.body_count(), 1);
        assert_eq!(m.bytes(), b.len());
        // All keys serve the same allocation.
        assert!(Arc::ptr_eq(&m.get(&key("/a")).unwrap(), &b));
        assert!(Arc::ptr_eq(&m.get(&key("/dup3")).unwrap(), &b));
    }

    #[test]
    fn body_survives_until_last_sharer_leaves() {
        let m = MemCache::new(100);
        let b = body("shared");
        insert(&m, &key("/a"), Arc::clone(&b));
        insert(&m, &key("/b"), Arc::clone(&b));
        m.remove(&key("/a"));
        assert_eq!(m.bytes(), b.len(), "body still referenced by /b");
        assert!(m.get(&key("/b")).is_some());
        m.remove(&key("/b"));
        assert_eq!(m.bytes(), 0);
        assert_eq!(m.body_count(), 0);
    }

    #[test]
    fn same_key_refresh_is_not_a_dedup_hit() {
        let m = MemCache::new(100);
        let b = body("stable");
        insert(&m, &key("/a"), Arc::clone(&b));
        // Re-populating the same key with the same bytes (store → mem
        // refill) must not inflate the dedup counter.
        assert!(!insert(&m, &key("/a"), Arc::clone(&b)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.bytes(), b.len());
    }

    #[test]
    fn oversized_body_admitted_when_already_resident() {
        let m = MemCache::new(8);
        let b = body("12345678"); // exactly the budget
        insert(&m, &key("/a"), Arc::clone(&b));
        // A second key sharing those bytes needs zero new bytes, so it
        // is admitted even though len == budget leaves no headroom.
        assert!(insert(&m, &key("/b"), Arc::clone(&b)));
        assert_eq!(m.len(), 2);
        assert_eq!(m.bytes(), 8);
    }

    #[test]
    fn evicting_a_sharer_keeps_bytes_for_the_rest() {
        let m = MemCache::new(10);
        let b = body("aaaaaaaa"); // 8 bytes, shared by two keys
        insert(&m, &key("/a"), Arc::clone(&b));
        insert(&m, &key("/b"), Arc::clone(&b));
        // Inserting 4 fresh bytes must evict keys until they fit; the
        // first eviction (/a) frees nothing because /b still holds the
        // body, so /b goes too.
        insert(&m, &key("/c"), body("cccc"));
        assert!(m.get(&key("/c")).is_some());
        assert!(m.bytes() <= 10);
    }
}
