//! Tests for the `swala` binary: config handling and a real two-process
//! deployment exchanging cache entries over the wire.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use swala::HttpClient;

const BIN: &str = env!("CARGO_BIN_EXE_swala");

struct Proc(Child);

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Start the binary and parse "http on <addr>, cache protocol on <addr>"
/// from its stderr banner.
fn spawn_node(config: &str, tag: &str) -> (Proc, std::net::SocketAddr, std::net::SocketAddr) {
    let path = std::env::temp_dir().join(format!("swala-bin-{tag}-{}.conf", std::process::id()));
    std::fs::write(&path, config).unwrap();
    let mut child = Command::new(BIN)
        .arg(&path)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn swala binary");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut reader = BufReader::new(stderr);
    let mut line = String::new();
    reader.read_line(&mut line).expect("banner line");
    // "swala nodeN: http on 127.0.0.1:PORT, cache protocol on 127.0.0.1:PORT"
    let http = line
        .split("http on ")
        .nth(1)
        .and_then(|s| s.split(',').next())
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or_else(|| panic!("unparsable banner: {line:?}"));
    let cache = line
        .split("cache protocol on ")
        .nth(1)
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or_else(|| panic!("unparsable banner: {line:?}"));
    // Drain remaining stderr in the background so the child never blocks.
    std::thread::spawn(move || for _ in reader.lines() {});
    (Proc(child), http, cache)
}

#[test]
fn binary_serves_requests_from_config() {
    let (proc_, http, _) = spawn_node(
        "node 0\nnodes 1\nlisten 127.0.0.1:0\ncache_listen 127.0.0.1:0\npool 2\ncache /cgi-bin/*\n",
        "single",
    );
    let mut client = HttpClient::new(http).with_timeout(Duration::from_secs(5));
    let miss = client.get("/cgi-bin/adl?id=1&ms=1").unwrap();
    assert!(miss.status.is_success());
    let hit = client.get("/cgi-bin/adl?id=1&ms=1").unwrap();
    assert_eq!(hit.headers.get("X-Swala-Cache"), Some("local-hit"));
    drop(proc_);
}

#[test]
fn binary_rejects_bad_config() {
    let path = std::env::temp_dir().join(format!("swala-bin-bad-{}.conf", std::process::id()));
    std::fs::write(&path, "frobnicate everything\n").unwrap();
    let out = Command::new(BIN).arg(&path).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown keyword"));
    // Missing file also fails cleanly.
    let out = Command::new(BIN)
        .arg("/no/such/file.conf")
        .output()
        .unwrap();
    assert!(!out.status.success());
}

/// Reserve a likely-free localhost port (bind ephemeral, read, release).
fn free_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

#[test]
fn two_binary_processes_cooperate() {
    // Pre-pick node 1's cache port so node 0 can name it as a peer
    // before node 1 exists — how a real static deployment is configured.
    let port1 = free_port();
    let (p0, http0, cache0) = spawn_node(
        &format!(
            "node 0\nnodes 2\nlisten 127.0.0.1:0\ncache_listen 127.0.0.1:0\npool 2\n\
             peer 1 127.0.0.1:{port1}\ncache /cgi-bin/*\n"
        ),
        "pair0",
    );
    let (p1, http1, _cache1) = spawn_node(
        &format!(
            "node 1\nnodes 2\nlisten 127.0.0.1:0\ncache_listen 127.0.0.1:{port1}\npool 2\n\
             peer 0 {cache0}\ncache /cgi-bin/*\n"
        ),
        "pair1",
    );

    // Warm node 0; its insert broadcast reaches node 1's directory, and
    // node 1 serves the request as a remote fetch over real process
    // boundaries.
    let mut c0 = HttpClient::new(http0).with_timeout(Duration::from_secs(5));
    let expect = c0.get("/cgi-bin/adl?id=77&ms=1").unwrap();
    assert!(expect.status.is_success());

    let mut c1 = HttpClient::new(http1).with_timeout(Duration::from_secs(5));
    let deadline = Instant::now() + Duration::from_secs(10);
    let r1 = loop {
        let r = c1.get("/cgi-bin/adl?id=77&ms=1").unwrap();
        if r.headers.get("X-Swala-Cache") == Some("remote-hit") {
            break r;
        }
        // The notice may not have landed yet and node 1 cached its own
        // execution; invalidate and retry until the remote path is seen.
        c1.get("/swala-admin/invalidate?key=%2Fcgi-bin%2Fadl%3Fid%3D77%26ms%3D1")
            .unwrap();
        assert!(Instant::now() < deadline, "never observed a remote hit");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(
        r1.body, expect.body,
        "remote fetch returns node 0's exact bytes"
    );
    drop((p0, p1));
}
