//! Replacement-policy comparison on a heterogeneous workload.
//!
//! The §5.3 trace has uniform costs and sizes, where every reasonable
//! policy degenerates to recency. Real digital-library traffic does not:
//! costs span two orders of magnitude and output sizes vary wildly.
//! This example uses the workload crate's heterogeneous trace to show
//! where the five policies of the companion technical report [10] part
//! ways — both in hit *count* and in execution time *saved* (the metric
//! the paper actually optimizes).
//!
//! ```text
//! cargo run --release --example policy_comparison
//! ```

use swala_cache::PolicyKind;
use swala_sim::{simulate, SimConfig};
use swala_workload::{heterogeneous_trace, HeteroConfig};

fn main() {
    let trace = heterogeneous_trace(&HeteroConfig::default());
    let (_, total_micros) = trace.dynamic_stats();
    println!(
        "heterogeneous trace: {} requests, {} unique, {:.0}s total simulated work\n",
        trace.len(),
        trace.unique_targets(),
        total_micros as f64 / 1e6
    );
    println!(
        "{:<8} {:>8} {:>12} {:>14} {:>10}",
        "policy", "hits", "evictions", "time saved(s)", "saved %"
    );
    for policy in PolicyKind::ALL {
        let r = simulate(
            &SimConfig {
                nodes: 4,
                capacity: 60,
                policy,
                ..Default::default()
            },
            &trace,
        );
        println!(
            "{:<8} {:>8} {:>12} {:>14.0} {:>9.1}%",
            policy.to_string(),
            r.hits(),
            r.evictions,
            r.saved_micros as f64 / 1e6,
            100.0 * r.saved_micros as f64 / total_micros as f64,
        );
    }
    println!("\ncost-aware policies (cost, gds) save more *time* even when\nrecency/frequency policies match or beat them on raw hit count.");
}
