//! Zipf-distributed sampling over ranks `0..n`.
//!
//! Implemented as an inverse-CDF table: exact, allocation-once, and
//! deterministic under a seeded RNG — properties the hit-ratio
//! experiments need for reproducibility.

use rand::Rng;

/// A Zipf(s) distribution over `n` ranks (rank 0 most popular).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build for `n ≥ 1` ranks with exponent `s ≥ 0` (s = 0 is uniform).
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(
            s >= 0.0 && s.is_finite(),
            "exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when only one rank exists.
    pub fn is_empty(&self) -> bool {
        false // n >= 1 by construction
    }

    /// Sample a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        // partition_point: first rank whose CDF value exceeds u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        let hi = self.cdf[rank];
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one_and_is_monotone() {
        let z = Zipf::new(100, 0.9);
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for r in 1..100 {
            assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-12, "pmf not monotone at {r}");
        }
    }

    #[test]
    fn s_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_matches_pmf_roughly() {
        let z = Zipf::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 50];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should dominate; empirical frequency within 10% of pmf.
        let f0 = counts[0] as f64 / n as f64;
        assert!(
            (f0 - z.pmf(0)).abs() / z.pmf(0) < 0.1,
            "f0={f0}, pmf={}",
            z.pmf(0)
        );
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[49]);
    }

    #[test]
    fn deterministic_under_seed() {
        let z = Zipf::new(20, 0.8);
        let a: Vec<usize> = (0..100)
            .scan(StdRng::seed_from_u64(42), |rng, _| Some(z.sample(rng)))
            .collect();
        let b: Vec<usize> = (0..100)
            .scan(StdRng::seed_from_u64(42), |rng, _| Some(z.sample(rng)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        Zipf::new(0, 1.0);
    }
}
