//! Consistent-hash ring for the partitioned directory mode.
//!
//! The paper's replicated directory makes every insert/delete an O(N)
//! broadcast — the §5.2 scaling wall. Partitioned mode replaces the
//! broadcast with one point-to-point update to the key's *home node*:
//! the node that the ring assigns the key's slice of hash space to.
//!
//! The ring hashes `vnodes` virtual points per node onto the 64-bit
//! circle; a key belongs to the node owning the first point at or after
//! the key's [`CacheKey::stable_hash`], wrapping around. Virtual nodes
//! smooth the per-node share toward 1/N, and membership changes remap
//! only the departing/arriving node's share (~1/N of keys) instead of
//! reshuffling everything — the classic consistent-hashing property.
//!
//! Point hashes reuse the same FNV-1a function as
//! [`CacheKey::stable_hash`]: stable across runs, platforms and nodes,
//! which is non-negotiable — every node must compute the *same* ring or
//! updates scatter to the wrong homes.

use crate::key::CacheKey;
use crate::node::NodeId;

/// Virtual points per node when no explicit count is configured.
///
/// Per-node share spread scales as 1/sqrt(vnodes); 256 points keeps an
/// 8-node ring within ±20% of fair share (64 did not — one node drew
/// 21.8% under fair), while lookups stay a binary search over a couple
/// thousand points.
pub const DEFAULT_VNODES: usize = 256;

/// Which directory organization a node runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirectoryKind {
    /// The paper's fully replicated directory: every insert/delete is
    /// broadcast to all peers. The faithful default.
    #[default]
    Replicated,
    /// Consistent-hash partitioned directory: each key has one home
    /// node that holds its directory entry; updates are point-to-point.
    Partitioned,
}

impl DirectoryKind {
    pub fn as_str(self) -> &'static str {
        match self {
            DirectoryKind::Replicated => "replicated",
            DirectoryKind::Partitioned => "partitioned",
        }
    }
}

impl std::str::FromStr for DirectoryKind {
    type Err = String;
    fn from_str(s: &str) -> Result<DirectoryKind, String> {
        match s {
            "replicated" => Ok(DirectoryKind::Replicated),
            "partitioned" => Ok(DirectoryKind::Partitioned),
            other => Err(format!(
                "directory must be replicated|partitioned, got {other:?}"
            )),
        }
    }
}

/// FNV-1a over an arbitrary byte string — the same function as
/// [`CacheKey::stable_hash`], kept in sync by the `matches_key_hash`
/// test below.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer applied on top of FNV-1a for ring positions.
///
/// FNV-1a of short, near-identical strings (vnode labels, `?id=N` query
/// keys) disperses poorly in the high bits, and ring placement is a
/// binary search on the full 64-bit value — without this mix, an
/// 8-node/64-vnode ring gave one node 5.7% of the hash space instead
/// of 12.5%. The mix is a fixed bijection, so positions stay stable
/// across runs, platforms and nodes.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A consistent-hash ring with virtual nodes.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Ring points sorted by hash; ties broken by node id so every node
    /// builds the identical ring regardless of insertion order.
    points: Vec<(u64, NodeId)>,
    members: Vec<NodeId>,
    vnodes: usize,
}

impl HashRing {
    /// Ring over nodes `0..num_nodes`, the common cluster layout.
    pub fn new(num_nodes: usize, vnodes: usize) -> HashRing {
        Self::with_members((0..num_nodes).map(|i| NodeId(i as u16)), vnodes)
    }

    /// Ring over an explicit membership (used by the remap tests and by
    /// anyone modelling a node joining or leaving).
    pub fn with_members(members: impl IntoIterator<Item = NodeId>, vnodes: usize) -> HashRing {
        let vnodes = vnodes.max(1);
        let mut members: Vec<NodeId> = members.into_iter().collect();
        members.sort_unstable();
        members.dedup();
        assert!(!members.is_empty(), "ring needs at least one node");
        let mut points = Vec::with_capacity(members.len() * vnodes);
        for &node in &members {
            for v in 0..vnodes {
                let label = format!("swala-ring/node-{}/vnode-{v}", node.0);
                points.push((mix(fnv1a(label.as_bytes())), node));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            members,
            vnodes,
        }
    }

    /// The home node for `key`: the successor point of the key's stable
    /// hash on the ring.
    pub fn home(&self, key: &CacheKey) -> NodeId {
        self.home_of_hash(key.stable_hash())
    }

    /// Successor lookup on a raw stable hash (the sim hashes synthetic
    /// ids). The same finalizer mix is applied here as to ring points,
    /// so pre-mixed and key-derived positions agree.
    pub fn home_of_hash(&self, h: u64) -> NodeId {
        let h = mix(h);
        let idx = self.points.partition_point(|&(p, _)| p < h);
        // Wrap: a hash past the last point belongs to the first.
        self.points[idx % self.points.len()].1
    }

    /// Ring membership, sorted.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Virtual points per node.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// A new ring with `node` added (no-op clone if already present).
    pub fn with_node_added(&self, node: NodeId) -> HashRing {
        let members = self.members.iter().copied().chain([node]);
        Self::with_members(members, self.vnodes)
    }

    /// A new ring with `node` removed.
    ///
    /// Panics if that would empty the ring — a cluster with zero nodes
    /// has no homes to assign.
    pub fn with_node_removed(&self, node: NodeId) -> HashRing {
        let members = self.members.iter().copied().filter(|&m| m != node);
        Self::with_members(members, self.vnodes)
    }

    /// Exact fraction of the 64-bit hash space each member owns, in
    /// membership order (the `/swala-status` ownership table).
    pub fn shares(&self) -> Vec<(NodeId, f64)> {
        let mut owned: Vec<u128> = vec![0; self.members.len()];
        let idx_of = |node: NodeId| self.members.binary_search(&node).expect("member");
        for (i, &(h, node)) in self.points.iter().enumerate() {
            // Point i owns the arc (previous point, this point], with
            // the first point also owning the wrap-around arc.
            let prev = if i == 0 {
                self.points[self.points.len() - 1].0
            } else {
                self.points[i - 1].0
            };
            let arc = if self.points.len() == 1 {
                1u128 << 64
            } else {
                (h.wrapping_sub(prev)) as u128
            };
            owned[idx_of(node)] += arc;
        }
        let total = (1u128 << 64) as f64;
        self.members
            .iter()
            .zip(owned)
            .map(|(&n, o)| (n, o as f64 / total))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn directory_kind_parses_and_prints() {
        assert_eq!(
            "replicated".parse::<DirectoryKind>().unwrap(),
            DirectoryKind::Replicated
        );
        assert_eq!(
            "partitioned".parse::<DirectoryKind>().unwrap(),
            DirectoryKind::Partitioned
        );
        assert_eq!(DirectoryKind::Replicated.as_str(), "replicated");
        assert_eq!(DirectoryKind::Partitioned.as_str(), "partitioned");
        assert_eq!(DirectoryKind::default(), DirectoryKind::Replicated);
        assert!("gossip"
            .parse::<DirectoryKind>()
            .unwrap_err()
            .contains("replicated|partitioned"));
    }

    #[test]
    fn matches_key_hash() {
        // The ring's point hash MUST stay the same function as the
        // key hash; if these diverge the ring still works, but this
        // pin catches accidental drift to a randomly-seeded hasher.
        let k = CacheKey::new("a");
        assert_eq!(fnv1a(b"a"), k.stable_hash());
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn deterministic_across_builds() {
        let a = HashRing::new(4, 32);
        let b = HashRing::with_members([NodeId(3), NodeId(0), NodeId(2), NodeId(1)], 32);
        let key = CacheKey::new("/cgi-bin/adl?id=17");
        assert_eq!(a.home(&key), b.home(&key));
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn single_node_owns_everything() {
        let ring = HashRing::new(1, 8);
        for i in 0..100 {
            assert_eq!(
                ring.home(&CacheKey::new(format!("/cgi-bin/x?id={i}"))),
                NodeId(0)
            );
        }
        let shares = ring.shares();
        assert_eq!(shares.len(), 1);
        assert!((shares[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_members_are_deduped() {
        let ring = HashRing::with_members([NodeId(0), NodeId(0), NodeId(1)], 16);
        assert_eq!(ring.members(), &[NodeId(0), NodeId(1)]);
    }

    #[test]
    fn shares_sum_to_one() {
        let ring = HashRing::new(8, DEFAULT_VNODES);
        let total: f64 = ring.shares().iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn hash_space_shares_are_roughly_fair() {
        // Analytic key-space share per node (not sampled): with 64
        // vnodes each of 8 nodes should own 12.5% ± 20% relative.
        let ring = HashRing::new(8, DEFAULT_VNODES);
        let fair = 1.0 / 8.0;
        for (node, share) in ring.shares() {
            assert!(
                (share - fair).abs() <= fair * 0.20,
                "node {node:?} owns {:.2}% of hash space (fair {:.2}%)",
                share * 100.0,
                fair * 100.0
            );
        }
    }

    proptest! {
        // Satellite: sampled key distribution within ±20% of fair share
        // across 8 nodes.
        #[test]
        fn distributes_keys_fairly(seed in 0u64..1_000_000) {
            let ring = HashRing::new(8, DEFAULT_VNODES);
            let mut counts: HashMap<NodeId, usize> = HashMap::new();
            let n_keys = 4000usize;
            for i in 0..n_keys {
                let key = CacheKey::new(format!("/cgi-bin/adl?run={seed}&id={i}"));
                *counts.entry(ring.home(&key)).or_default() += 1;
            }
            let fair = n_keys as f64 / 8.0;
            for node in ring.members() {
                let got = *counts.get(node).unwrap_or(&0) as f64;
                prop_assert!(
                    (got - fair).abs() <= fair * 0.20,
                    "node {:?} got {} keys, fair {}", node, got, fair
                );
            }
        }

        // Satellite: adding a node remaps only ~1/N of keys, and every
        // remapped key moves TO the new node (never between survivors).
        #[test]
        fn adding_a_node_remaps_about_one_nth(seed in 0u64..1_000_000) {
            let before = HashRing::new(8, DEFAULT_VNODES);
            let after = before.with_node_added(NodeId(8));
            let n_keys = 4000usize;
            let mut moved = 0usize;
            for i in 0..n_keys {
                let key = CacheKey::new(format!("/cgi-bin/adl?run={seed}&id={i}"));
                let (h0, h1) = (before.home(&key), after.home(&key));
                if h0 != h1 {
                    prop_assert_eq!(h1, NodeId(8), "remaps only go to the new node");
                    moved += 1;
                }
            }
            // Expect ~1/9 of keys to move; allow 2x slack on the upper
            // bound and require the movement actually happened.
            let expected = n_keys as f64 / 9.0;
            prop_assert!(moved > 0, "a new node must take some keys");
            prop_assert!(
                (moved as f64) <= expected * 2.0,
                "moved {} of {} keys (expected ~{})", moved, n_keys, expected
            );
        }

        // And removal: only the departed node's keys move.
        #[test]
        fn removing_a_node_remaps_only_its_keys(seed in 0u64..1_000_000) {
            let before = HashRing::new(8, DEFAULT_VNODES);
            let after = before.with_node_removed(NodeId(3));
            let n_keys = 4000usize;
            let mut moved = 0usize;
            for i in 0..n_keys {
                let key = CacheKey::new(format!("/cgi-bin/adl?run={seed}&id={i}"));
                let (h0, h1) = (before.home(&key), after.home(&key));
                if h0 != h1 {
                    prop_assert_eq!(h0, NodeId(3), "only orphaned keys remap");
                    moved += 1;
                }
            }
            let expected = n_keys as f64 / 8.0;
            prop_assert!(moved > 0);
            prop_assert!((moved as f64) <= expected * 2.0);
        }
    }
}
