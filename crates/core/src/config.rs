//! Server configuration.

use crate::monitor::MonitorRule;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use swala_cache::{CacheRules, DirectoryKind, NodeId, PolicyKind, StoreKind};
use swala_proto::FaultInjector;

/// Which connection engine serves HTTP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The paper's §4.1 accept pool: one blocking thread per connection,
    /// "from parsing to completion". The faithful default.
    Threaded,
    /// Readiness-polled event loop: one loop thread multiplexes every
    /// connection; `pool_size` workers execute requests. Same observable
    /// semantics, C10K-capable idle keep-alive.
    Event,
}

impl EngineKind {
    pub fn as_str(self) -> &'static str {
        match self {
            EngineKind::Threaded => "threaded",
            EngineKind::Event => "event",
        }
    }
}

impl std::str::FromStr for EngineKind {
    type Err = String;
    fn from_str(s: &str) -> Result<EngineKind, String> {
        match s {
            "threaded" => Ok(EngineKind::Threaded),
            "event" => Ok(EngineKind::Event),
            other => Err(format!("engine must be threaded|event, got {other:?}")),
        }
    }
}

/// Access-log line format (`log_format text|json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// Common Log Format with the trace suffix — the default.
    Text,
    /// One JSON object per request, same fields as the text line.
    Json,
}

impl LogFormat {
    pub fn as_str(self) -> &'static str {
        match self {
            LogFormat::Text => "text",
            LogFormat::Json => "json",
        }
    }
}

impl std::str::FromStr for LogFormat {
    type Err = String;
    fn from_str(s: &str) -> Result<LogFormat, String> {
        match s {
            "text" => Ok(LogFormat::Text),
            "json" => Ok(LogFormat::Json),
            other => Err(format!("log_format must be text|json, got {other:?}")),
        }
    }
}

/// Everything needed to run one Swala node.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// This node's id within the cluster.
    pub node: NodeId,
    /// Cluster size (including this node).
    pub num_nodes: usize,
    /// HTTP listen address (port 0 = ephemeral).
    pub http_addr: SocketAddr,
    /// Cache-protocol listen address (port 0 = ephemeral).
    pub cache_addr: SocketAddr,
    /// Request-handler thread-pool size.
    pub pool_size: usize,
    /// Document root for static files; `None` disables file serving.
    pub docroot: Option<PathBuf>,
    /// Directory for the disk cache store; `None` = in-memory store.
    pub cache_dir: Option<PathBuf>,
    /// Local cache capacity in entries (the paper's "cache size").
    pub capacity: usize,
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Cacheability rules.
    pub rules: CacheRules,
    /// Master switch: false = "Swala no-cache" baseline mode.
    pub caching_enabled: bool,
    /// Timeout for remote cache fetches.
    pub fetch_timeout: Duration,
    /// Purge-daemon wake interval.
    pub purge_interval: Duration,
    /// Value of the `Server:` header.
    pub server_name: String,
    /// Source-monitoring rules (automatic invalidation, after \[16\]).
    pub monitors: Vec<MonitorRule>,
    /// How often monitored sources are polled.
    pub monitor_interval: Duration,
    /// Pull peers' directory snapshots at startup (late-joining nodes).
    pub sync_on_join: bool,
    /// Warm restart: rebuild the directory from a disk store's
    /// self-describing entries at startup (no effect on memory stores).
    pub recover_cache: bool,
    /// Write a Common-Log-Format access log to this file.
    pub access_log: Option<PathBuf>,
    /// Access-log line format (`log_format text|json`). Text is the
    /// CLF default; json emits one object per request with the same
    /// fields (including the trace suffix's `trace=`/`owner=`).
    pub log_format: LogFormat,
    /// Per-peer broadcast queue depth; overflow drops the oldest notice
    /// (asynchronous weak consistency tolerates the loss).
    pub broadcast_queue: usize,
    /// Max notices coalesced into one batch frame by a writer thread.
    pub broadcast_batch: usize,
    /// How long a writer lingers for more notices before flushing a
    /// batch. Zero = opportunistic coalescing only.
    pub broadcast_window: Duration,
    /// Total remote-fetch attempts per request (1 = no retries).
    pub fetch_retries: u32,
    /// Backoff before the second fetch attempt; doubles per retry, with
    /// deterministic jitter.
    pub fetch_backoff: Duration,
    /// Consecutive fetch failures before a peer is marked suspect.
    pub suspect_after: u32,
    /// Consecutive fetch failures before a peer is quarantined (its
    /// directory entries are evicted and a `NodeDown` is broadcast).
    pub quarantine_after: u32,
    /// Rest period before a quarantined peer gets one probe fetch.
    pub probe_interval: Duration,
    /// Byte budget for the in-memory body tier over the store; 0
    /// disables it (every local hit reads the store).
    pub mem_cache_bytes: usize,
    /// Max idle fetch connections kept warm per peer; 0 disables
    /// pooling (every remote fetch dials).
    pub fetch_pool_size: usize,
    /// Single-flight coalescing: concurrent identical misses wait for
    /// the first execution (and concurrent identical remote fetches
    /// share one owner fetch) instead of duplicating the work. Off
    /// preserves the paper's re-run semantics for the §5 experiments.
    pub coalesce: bool,
    /// Bound on how long a coalesced miss waits for the leader before
    /// falling back to its own execution.
    pub coalesce_wait: Duration,
    /// Fault injector shared by the node's transports. `None` (always,
    /// outside chaos tests — there is no config-file syntax for it) means
    /// clean production transports.
    pub faults: Option<Arc<FaultInjector>>,
    /// Telemetry master switch: off = no tracing, no latency histograms
    /// (counters stay scrapeable). The `obs off` baseline is what the
    /// hitpath bench compares against to bound telemetry overhead.
    pub obs_enabled: bool,
    /// Completed traces kept in the in-memory ring (`/swala-traces`);
    /// 0 keeps none.
    pub trace_ring: usize,
    /// Monitored slots in the per-key heat sketch (`/swala-hotkeys`);
    /// 0 disables the sketch. Forced to 0 when `obs` is off.
    pub hotkeys: usize,
    /// Slowest completed traces retained per outcome class
    /// (`/swala-traces?slow=1`); 0 keeps none.
    pub slow_traces: usize,
    /// Connection engine (`engine threaded|event`). The `SWALA_ENGINE`
    /// environment variable overrides the *default* only — explicit
    /// config lines and programmatic settings win, so a test that pins an
    /// engine is immune to a suite-wide env sweep.
    pub engine: EngineKind,
    /// Directory organization (`directory replicated|partitioned`).
    /// Replicated is the paper-faithful default: every insert/delete
    /// broadcasts to all peers. Partitioned assigns each key a home node
    /// on a consistent-hash ring and sends one point-to-point update
    /// instead. Like `engine`, the `SWALA_DIRECTORY` environment
    /// variable overrides the *default* only.
    pub directory: DirectoryKind,
    /// Virtual nodes per member on the consistent-hash ring
    /// (partitioned mode only).
    pub ring_vnodes: usize,
    /// Body-store layout (`store files|segment`). `files` is the
    /// paper-faithful default (one OS file per cached result, §4.1);
    /// `segment` is the crash-safe append-only segment log with
    /// checksummed records and content-digest dedup. Like `engine`, the
    /// `SWALA_STORE` environment variable overrides the *default* only —
    /// explicit config lines and programmatic settings win, so tests
    /// that pin a store are immune to a suite-wide env sweep.
    pub store: StoreKind,
    /// Durability of body-store writes (`fsync on|off`): sync data
    /// before publishing a write and sync the directory/segment after,
    /// so an acked entry survives power loss. `off` trades that for
    /// write throughput (benches, ephemeral caches).
    pub fsync: bool,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            node: NodeId(0),
            num_nodes: 1,
            http_addr: "127.0.0.1:0".parse().expect("static addr"),
            cache_addr: "127.0.0.1:0".parse().expect("static addr"),
            pool_size: 16,
            docroot: None,
            cache_dir: None,
            capacity: 2000,
            policy: PolicyKind::Lru,
            rules: CacheRules::allow_all(),
            caching_enabled: true,
            fetch_timeout: Duration::from_secs(2),
            purge_interval: Duration::from_secs(2),
            server_name: "Swala/0.1".to_string(),
            monitors: Vec::new(),
            monitor_interval: Duration::from_secs(2),
            sync_on_join: false,
            recover_cache: true,
            access_log: None,
            log_format: LogFormat::Text,
            broadcast_queue: 1024,
            broadcast_batch: 64,
            broadcast_window: Duration::ZERO,
            fetch_retries: 3,
            fetch_backoff: Duration::from_millis(25),
            suspect_after: 1,
            quarantine_after: 3,
            probe_interval: Duration::from_secs(5),
            mem_cache_bytes: 64 * 1024 * 1024,
            fetch_pool_size: swala_proto::DEFAULT_POOL_SIZE,
            coalesce: true,
            coalesce_wait: Duration::from_secs(10),
            faults: None,
            obs_enabled: true,
            trace_ring: 256,
            hotkeys: 128,
            slow_traces: 8,
            engine: match std::env::var("SWALA_ENGINE").as_deref() {
                Ok("event") => EngineKind::Event,
                _ => EngineKind::Threaded,
            },
            directory: match std::env::var("SWALA_DIRECTORY").as_deref() {
                Ok("partitioned") => DirectoryKind::Partitioned,
                _ => DirectoryKind::Replicated,
            },
            ring_vnodes: swala_cache::DEFAULT_VNODES,
            store: match std::env::var("SWALA_STORE").as_deref() {
                Ok("segment") => StoreKind::Segment,
                _ => StoreKind::Files,
            },
            fsync: true,
        }
    }
}

impl ServerOptions {
    /// Parse the `swala.conf` line format. Unknown keys are errors.
    ///
    /// ```text
    /// node 0
    /// nodes 4
    /// listen 127.0.0.1:8080
    /// cache_listen 127.0.0.1:9080
    /// pool 16
    /// docroot /var/www
    /// cache_dir /var/cache/swala
    /// capacity 2000
    /// policy gds
    /// caching on
    /// fetch_timeout_ms 2000
    /// purge_interval_ms 2000
    /// # cacheability rules use the rule syntax directly:
    /// cache /cgi-bin/adl* ttl=300 min_ms=50
    /// nocache /cgi-bin/private/*
    /// ```
    pub fn parse(text: &str) -> Result<ServerOptions, String> {
        let mut opts = ServerOptions::default();
        let mut rule_lines = String::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| format!("line {}: {msg}", lineno + 1);
            let (keyword, rest) = match line.split_once(char::is_whitespace) {
                Some((k, r)) => (k, r.trim()),
                None => (line, ""),
            };
            match keyword {
                "node" => opts.node = NodeId(rest.parse().map_err(|_| err("bad node id"))?),
                "nodes" => opts.num_nodes = rest.parse().map_err(|_| err("bad node count"))?,
                "listen" => opts.http_addr = rest.parse().map_err(|_| err("bad listen addr"))?,
                "cache_listen" => {
                    opts.cache_addr = rest.parse().map_err(|_| err("bad cache_listen addr"))?
                }
                "pool" => opts.pool_size = rest.parse().map_err(|_| err("bad pool size"))?,
                "docroot" => opts.docroot = Some(PathBuf::from(rest)),
                "cache_dir" => opts.cache_dir = Some(PathBuf::from(rest)),
                "capacity" => opts.capacity = rest.parse().map_err(|_| err("bad capacity"))?,
                "policy" => opts.policy = rest.parse().map_err(|e: String| err(&e))?,
                "caching" => {
                    opts.caching_enabled = match rest {
                        "on" => true,
                        "off" => false,
                        _ => return Err(err("caching must be on|off")),
                    }
                }
                "fetch_timeout_ms" => {
                    opts.fetch_timeout = Duration::from_millis(
                        rest.parse().map_err(|_| err("bad fetch_timeout_ms"))?,
                    )
                }
                "purge_interval_ms" => {
                    opts.purge_interval = Duration::from_millis(
                        rest.parse().map_err(|_| err("bad purge_interval_ms"))?,
                    )
                }
                "server_name" => opts.server_name = rest.to_string(),
                "monitor" => {
                    let (prefix, source) = rest
                        .split_once(char::is_whitespace)
                        .ok_or_else(|| err("monitor needs <key-prefix> <source-file>"))?;
                    if !prefix.starts_with('/') {
                        return Err(err("monitor key-prefix must start with '/'"));
                    }
                    opts.monitors.push(MonitorRule {
                        key_prefix: prefix.to_string(),
                        source: PathBuf::from(source.trim()),
                    });
                }
                "monitor_interval_ms" => {
                    opts.monitor_interval = Duration::from_millis(
                        rest.parse().map_err(|_| err("bad monitor_interval_ms"))?,
                    )
                }
                "sync_on_join" => {
                    opts.sync_on_join = match rest {
                        "on" => true,
                        "off" => false,
                        _ => return Err(err("sync_on_join must be on|off")),
                    }
                }
                "recover_cache" => {
                    opts.recover_cache = match rest {
                        "on" => true,
                        "off" => false,
                        _ => return Err(err("recover_cache must be on|off")),
                    }
                }
                "access_log" => opts.access_log = Some(PathBuf::from(rest)),
                "log_format" => {
                    opts.log_format = rest.parse().map_err(|e: String| err(&e))?;
                }
                "broadcast_queue" => {
                    opts.broadcast_queue = rest.parse().map_err(|_| err("bad broadcast_queue"))?;
                    if opts.broadcast_queue == 0 {
                        return Err(err("broadcast_queue must be positive"));
                    }
                }
                "broadcast_batch" => {
                    opts.broadcast_batch = rest.parse().map_err(|_| err("bad broadcast_batch"))?;
                    if opts.broadcast_batch == 0 {
                        return Err(err("broadcast_batch must be positive"));
                    }
                }
                "broadcast_window_ms" => {
                    opts.broadcast_window = Duration::from_millis(
                        rest.parse().map_err(|_| err("bad broadcast_window_ms"))?,
                    )
                }
                "fetch_retries" => {
                    opts.fetch_retries = rest.parse().map_err(|_| err("bad fetch_retries"))?;
                    if opts.fetch_retries == 0 {
                        return Err(err("fetch_retries must be positive"));
                    }
                }
                "fetch_backoff_ms" => {
                    opts.fetch_backoff = Duration::from_millis(
                        rest.parse().map_err(|_| err("bad fetch_backoff_ms"))?,
                    )
                }
                "suspect_after" => {
                    opts.suspect_after = rest.parse().map_err(|_| err("bad suspect_after"))?;
                    if opts.suspect_after == 0 {
                        return Err(err("suspect_after must be positive"));
                    }
                }
                "quarantine_after" => {
                    opts.quarantine_after =
                        rest.parse().map_err(|_| err("bad quarantine_after"))?;
                    if opts.quarantine_after == 0 {
                        return Err(err("quarantine_after must be positive"));
                    }
                }
                "probe_interval_ms" => {
                    opts.probe_interval = Duration::from_millis(
                        rest.parse().map_err(|_| err("bad probe_interval_ms"))?,
                    )
                }
                // 0 is legal for both hot-path knobs: it turns the
                // optimization off rather than breaking the server.
                "mem_cache_bytes" => {
                    opts.mem_cache_bytes = rest.parse().map_err(|_| err("bad mem_cache_bytes"))?;
                }
                "fetch_pool_size" => {
                    opts.fetch_pool_size = rest.parse().map_err(|_| err("bad fetch_pool_size"))?;
                }
                "coalesce" => {
                    opts.coalesce = match rest {
                        "on" => true,
                        "off" => false,
                        _ => return Err(err("coalesce must be on|off")),
                    }
                }
                "coalesce_wait_ms" => {
                    opts.coalesce_wait = Duration::from_millis(
                        rest.parse().map_err(|_| err("bad coalesce_wait_ms"))?,
                    );
                    if opts.coalesce_wait.is_zero() {
                        return Err(err("coalesce_wait_ms must be positive"));
                    }
                }
                "obs" => {
                    opts.obs_enabled = match rest {
                        "on" => true,
                        "off" => false,
                        _ => return Err(err("obs must be on|off")),
                    }
                }
                // 0 is legal: no traces retained, histograms still record.
                "trace_ring" => {
                    opts.trace_ring = rest.parse().map_err(|_| err("bad trace_ring"))?;
                }
                // 0 is legal for both: it disables that instrument only.
                "hotkeys" => {
                    opts.hotkeys = rest.parse().map_err(|_| err("bad hotkeys"))?;
                }
                "slow_traces" => {
                    opts.slow_traces = rest.parse().map_err(|_| err("bad slow_traces"))?;
                }
                "engine" => {
                    opts.engine = rest.parse().map_err(|e: String| err(&e))?;
                }
                "directory" => {
                    opts.directory = rest.parse().map_err(|e: String| err(&e))?;
                }
                "ring_vnodes" => {
                    opts.ring_vnodes = rest.parse().map_err(|_| err("bad ring_vnodes"))?;
                    if opts.ring_vnodes == 0 {
                        return Err(err("ring_vnodes must be positive"));
                    }
                }
                "store" => {
                    opts.store = rest.parse().map_err(|e: String| err(&e))?;
                }
                "fsync" => {
                    opts.fsync = match rest {
                        "on" => true,
                        "off" => false,
                        _ => return Err(err("fsync must be on|off")),
                    }
                }
                // Cacheability rules pass through to the rules parser.
                "cache" | "nocache" => {
                    rule_lines.push_str(line);
                    rule_lines.push('\n');
                }
                other => return Err(err(&format!("unknown keyword {other:?}"))),
            }
        }
        if !rule_lines.is_empty() {
            opts.rules = CacheRules::parse(&rule_lines)?;
        }
        if opts.node.index() >= opts.num_nodes {
            return Err(format!(
                "node {} out of range for {} nodes",
                opts.node, opts.num_nodes
            ));
        }
        if opts.pool_size == 0 {
            return Err("pool size must be positive".into());
        }
        Ok(opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = ServerOptions::default();
        assert_eq!(o.num_nodes, 1);
        assert!(o.caching_enabled);
        assert_eq!(o.capacity, 2000);
        assert!(o.pool_size > 0);
    }

    #[test]
    fn full_config_parses() {
        let text = "\
# Swala node 2 of 4
node 2
nodes 4
listen 127.0.0.1:8082
cache_listen 127.0.0.1:9082
pool 24
docroot /srv/www
cache_dir /srv/cache
capacity 500
policy gds
caching on
fetch_timeout_ms 1500
purge_interval_ms 750
server_name TestSwala
nocache /cgi-bin/private/*
cache /cgi-bin/* ttl=60 min_ms=20
";
        let o = ServerOptions::parse(text).unwrap();
        assert_eq!(o.node, NodeId(2));
        assert_eq!(o.num_nodes, 4);
        assert_eq!(o.http_addr.port(), 8082);
        assert_eq!(o.cache_addr.port(), 9082);
        assert_eq!(o.pool_size, 24);
        assert_eq!(o.docroot.as_deref(), Some(std::path::Path::new("/srv/www")));
        assert_eq!(o.capacity, 500);
        assert_eq!(o.policy, PolicyKind::GreedyDualSize);
        assert_eq!(o.fetch_timeout, Duration::from_millis(1500));
        assert_eq!(o.purge_interval, Duration::from_millis(750));
        assert_eq!(o.server_name, "TestSwala");
        assert_eq!(o.rules.len(), 2);
        assert_eq!(
            o.rules.decide("/cgi-bin/private/x"),
            swala_cache::CacheDecision::Uncacheable
        );
    }

    #[test]
    fn monitor_and_sync_keywords() {
        let o = ServerOptions::parse(
            "monitor /cgi-bin/gaz* /srv/gazetteer.db
monitor_interval_ms 500
sync_on_join on
",
        )
        .unwrap();
        assert_eq!(o.monitors.len(), 1);
        assert_eq!(o.monitors[0].key_prefix, "/cgi-bin/gaz*");
        assert_eq!(o.monitors[0].source, PathBuf::from("/srv/gazetteer.db"));
        assert_eq!(o.monitor_interval, Duration::from_millis(500));
        assert!(o.sync_on_join);
        assert!(ServerOptions::parse("monitor nopath file").is_err());
        assert!(ServerOptions::parse("monitor /x").is_err());
        assert!(ServerOptions::parse("sync_on_join maybe").is_err());
    }

    #[test]
    fn broadcast_keywords() {
        let o = ServerOptions::parse(
            "broadcast_queue 256
broadcast_batch 16
broadcast_window_ms 5
",
        )
        .unwrap();
        assert_eq!(o.broadcast_queue, 256);
        assert_eq!(o.broadcast_batch, 16);
        assert_eq!(o.broadcast_window, Duration::from_millis(5));
        assert!(ServerOptions::parse("broadcast_queue 0")
            .unwrap_err()
            .contains("positive"));
        assert!(ServerOptions::parse("broadcast_batch 0")
            .unwrap_err()
            .contains("positive"));
        assert!(ServerOptions::parse("broadcast_window_ms x")
            .unwrap_err()
            .contains("bad"));
    }

    #[test]
    fn failure_model_keywords() {
        let o = ServerOptions::parse(
            "fetch_retries 5
fetch_backoff_ms 10
suspect_after 2
quarantine_after 4
probe_interval_ms 750
",
        )
        .unwrap();
        assert_eq!(o.fetch_retries, 5);
        assert_eq!(o.fetch_backoff, Duration::from_millis(10));
        assert_eq!(o.suspect_after, 2);
        assert_eq!(o.quarantine_after, 4);
        assert_eq!(o.probe_interval, Duration::from_millis(750));
        assert!(ServerOptions::parse("fetch_retries 0")
            .unwrap_err()
            .contains("positive"));
        assert!(ServerOptions::parse("quarantine_after 0")
            .unwrap_err()
            .contains("positive"));
        assert!(ServerOptions::parse("suspect_after none")
            .unwrap_err()
            .contains("bad"));
    }

    #[test]
    fn hot_path_keywords() {
        let o = ServerOptions::parse(
            "mem_cache_bytes 1048576
fetch_pool_size 8
",
        )
        .unwrap();
        assert_eq!(o.mem_cache_bytes, 1_048_576);
        assert_eq!(o.fetch_pool_size, 8);
        // Zero disables each optimization; both remain valid configs.
        let off = ServerOptions::parse("mem_cache_bytes 0\nfetch_pool_size 0\n").unwrap();
        assert_eq!(off.mem_cache_bytes, 0);
        assert_eq!(off.fetch_pool_size, 0);
        assert!(ServerOptions::parse("mem_cache_bytes lots")
            .unwrap_err()
            .contains("bad"));
        assert!(ServerOptions::parse("fetch_pool_size many")
            .unwrap_err()
            .contains("bad"));
    }

    #[test]
    fn coalesce_keywords() {
        let d = ServerOptions::parse("").unwrap();
        assert!(d.coalesce, "single-flight defaults on");
        assert_eq!(d.coalesce_wait, Duration::from_secs(10));
        let o = ServerOptions::parse("coalesce off\ncoalesce_wait_ms 2500\n").unwrap();
        assert!(!o.coalesce);
        assert_eq!(o.coalesce_wait, Duration::from_millis(2500));
        assert!(ServerOptions::parse("coalesce maybe")
            .unwrap_err()
            .contains("on|off"));
        assert!(ServerOptions::parse("coalesce_wait_ms 0")
            .unwrap_err()
            .contains("positive"));
        assert!(ServerOptions::parse("coalesce_wait_ms soon")
            .unwrap_err()
            .contains("bad"));
    }

    #[test]
    fn telemetry_keywords() {
        let o = ServerOptions::parse(
            "obs off
trace_ring 64
",
        )
        .unwrap();
        assert!(!o.obs_enabled);
        assert_eq!(o.trace_ring, 64);
        let d = ServerOptions::parse("").unwrap();
        assert!(d.obs_enabled);
        assert_eq!(d.trace_ring, 256);
        assert_eq!(
            ServerOptions::parse(
                "trace_ring 0
"
            )
            .unwrap()
            .trace_ring,
            0
        );
        assert!(ServerOptions::parse("obs maybe")
            .unwrap_err()
            .contains("on|off"));
        assert!(ServerOptions::parse("trace_ring lots")
            .unwrap_err()
            .contains("bad"));
    }

    #[test]
    fn observability_keywords() {
        let d = ServerOptions::parse("").unwrap();
        assert_eq!(d.log_format, LogFormat::Text, "text log is the default");
        assert_eq!(d.hotkeys, 128);
        assert_eq!(d.slow_traces, 8);
        let o = ServerOptions::parse(
            "log_format json
hotkeys 512
slow_traces 16
",
        )
        .unwrap();
        assert_eq!(o.log_format, LogFormat::Json);
        assert_eq!(o.hotkeys, 512);
        assert_eq!(o.slow_traces, 16);
        // 0 disables each instrument; both remain valid configs.
        let off = ServerOptions::parse("hotkeys 0\nslow_traces 0\n").unwrap();
        assert_eq!(off.hotkeys, 0);
        assert_eq!(off.slow_traces, 0);
        assert!(ServerOptions::parse("log_format xml")
            .unwrap_err()
            .contains("text|json"));
        assert!(ServerOptions::parse("hotkeys lots")
            .unwrap_err()
            .contains("bad"));
        assert!(ServerOptions::parse("slow_traces crawl")
            .unwrap_err()
            .contains("bad"));
    }

    #[test]
    fn engine_keyword() {
        // Note: the default depends on SWALA_ENGINE (env override of the
        // default), so only explicit settings are asserted here.
        let o = ServerOptions::parse("engine event\n").unwrap();
        assert_eq!(o.engine, EngineKind::Event);
        let o = ServerOptions::parse("engine threaded\n").unwrap();
        assert_eq!(o.engine, EngineKind::Threaded);
        assert!(ServerOptions::parse("engine coroutine")
            .unwrap_err()
            .contains("threaded|event"));
    }

    #[test]
    fn directory_keywords() {
        // Note: the default depends on SWALA_DIRECTORY (env override of
        // the default), so only explicit settings are asserted here.
        let o = ServerOptions::parse("directory partitioned\nring_vnodes 64\n").unwrap();
        assert_eq!(o.directory, DirectoryKind::Partitioned);
        assert_eq!(o.ring_vnodes, 64);
        let o = ServerOptions::parse("directory replicated\n").unwrap();
        assert_eq!(o.directory, DirectoryKind::Replicated);
        assert_eq!(o.ring_vnodes, swala_cache::DEFAULT_VNODES);
        assert!(ServerOptions::parse("directory sharded")
            .unwrap_err()
            .contains("replicated|partitioned"));
        assert!(ServerOptions::parse("ring_vnodes 0")
            .unwrap_err()
            .contains("positive"));
        assert!(ServerOptions::parse("ring_vnodes many")
            .unwrap_err()
            .contains("bad"));
    }

    #[test]
    fn store_keywords() {
        // Note: the default depends on SWALA_STORE (env override of the
        // default), so only explicit settings are asserted here.
        let o = ServerOptions::parse("store segment\n").unwrap();
        assert_eq!(o.store, StoreKind::Segment);
        let o = ServerOptions::parse("store files\n").unwrap();
        assert_eq!(o.store, StoreKind::Files);
        assert!(o.fsync, "durable acks are the default");
        let o = ServerOptions::parse("fsync off\n").unwrap();
        assert!(!o.fsync);
        let o = ServerOptions::parse("fsync on\n").unwrap();
        assert!(o.fsync);
        assert!(ServerOptions::parse("store ramdisk")
            .unwrap_err()
            .contains("files|segment"));
        assert!(ServerOptions::parse("fsync maybe")
            .unwrap_err()
            .contains("on|off"));
    }

    #[test]
    fn caching_off() {
        let o = ServerOptions::parse("caching off\n").unwrap();
        assert!(!o.caching_enabled);
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(ServerOptions::parse("nonsense 1")
            .unwrap_err()
            .contains("unknown keyword"));
        assert!(ServerOptions::parse("node abc")
            .unwrap_err()
            .contains("bad node id"));
        assert!(ServerOptions::parse("caching sideways")
            .unwrap_err()
            .contains("on|off"));
        assert!(ServerOptions::parse("policy mystery")
            .unwrap_err()
            .contains("line 1"));
        assert!(ServerOptions::parse("node 5\nnodes 2")
            .unwrap_err()
            .contains("out of range"));
        assert!(ServerOptions::parse("pool 0")
            .unwrap_err()
            .contains("positive"));
    }

    #[test]
    fn empty_config_is_defaults() {
        let o = ServerOptions::parse("  \n# only a comment\n").unwrap();
        assert_eq!(o.num_nodes, ServerOptions::default().num_nodes);
    }
}
