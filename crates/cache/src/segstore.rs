//! Append-only segment-log body store with digest dedup.
//!
//! The paper's one-file-per-entry layout (`DiskStore`) acks a put after
//! a buffered write and rename — a crash can silently drop committed
//! entries, and identical bodies are stored once per key. This store
//! rebuilds the persistence layer along the lines of the gffice
//! dircache storage design: everything lives in a handful of
//! append-only **segment files** of checksummed records, the key index
//! is rebuilt on boot by scanning the segments (torn tails are
//! truncated, corrupt records skipped — never a panic), and bodies are
//! stored **once per content digest** with refcounts, so N keys sharing
//! a body hold one on-disk copy.
//!
//! On-disk format (all integers big-endian):
//!
//! ```text
//! segment file  = magic "SWSEG01\n" , record*
//! record        = header(21) , payload
//! header        = kind u8 | seq u64 | payload_len u32
//!               | payload_crc u32 | header_crc u32      (crc of bytes 0..17)
//! payload(Body) = digest[32] | body bytes
//! payload(Put)  = key_len u32 | key | digest[32] | ct_len u32 | ct
//!               | exec_micros u64 | expiry_flag u8 | expiry u64 | created u64
//! payload(Del)  = key_len u32 | key
//! ```
//!
//! Replay is **latest-wins by `seq`** (not file order), which makes
//! compaction crash-safe: compacted records keep their original
//! sequence numbers, so a crash that leaves both the old and the new
//! segments behind replays to the same index. Deleted/expired/
//! superseded records are *dead bytes*; when enough accumulate, a
//! compaction pass rewrites only the live records into fresh segments
//! and deletes the old files.

use crate::digest::Digest;
use crate::entry::unix_now;
use crate::key::CacheKey;
use crate::store::{HeaderMeta, RecoveredEntry, Store, StoreMetrics};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Segment-file magic + format version.
pub const SEG_MAGIC: &[u8; 8] = b"SWSEG01\n";
/// Fixed record-header length in bytes.
pub const REC_HEADER_LEN: usize = 21;

const KIND_BODY: u8 = 1;
const KIND_PUT: u8 = 2;
const KIND_DEL: u8 = 3;

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven. Implemented
/// here because the workspace builds offline with no checksum crates.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32/IEEE of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// One decoded segment-log record (public so the proptests can
/// round-trip the wire format directly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A body, stored once per content digest.
    Body {
        seq: u64,
        digest: Digest,
        body: Vec<u8>,
    },
    /// A key → digest mapping plus the metadata the directory needs.
    Put {
        seq: u64,
        key: CacheKey,
        digest: Digest,
        meta: HeaderMeta,
    },
    /// A deletion tombstone.
    Del { seq: u64, key: CacheKey },
}

impl Record {
    fn seq(&self) -> u64 {
        match self {
            Record::Body { seq, .. } | Record::Put { seq, .. } | Record::Del { seq, .. } => *seq,
        }
    }
}

/// Encode a record: 21-byte checksummed header plus payload.
pub fn encode_record(rec: &Record) -> Vec<u8> {
    let (kind, seq, payload) = match rec {
        Record::Body { seq, digest, body } => {
            let mut p = Vec::with_capacity(32 + body.len());
            p.extend_from_slice(digest.as_bytes());
            p.extend_from_slice(body);
            (KIND_BODY, *seq, p)
        }
        Record::Put {
            seq,
            key,
            digest,
            meta,
        } => {
            let k = key.as_str().as_bytes();
            let ct = meta.content_type.as_bytes();
            let mut p = Vec::with_capacity(4 + k.len() + 32 + 4 + ct.len() + 26);
            p.extend_from_slice(&(k.len() as u32).to_be_bytes());
            p.extend_from_slice(k);
            p.extend_from_slice(digest.as_bytes());
            p.extend_from_slice(&(ct.len() as u32).to_be_bytes());
            p.extend_from_slice(ct);
            p.extend_from_slice(&meta.exec_micros.to_be_bytes());
            match meta.expires_unix {
                Some(e) => {
                    p.push(1);
                    p.extend_from_slice(&e.to_be_bytes());
                }
                None => {
                    p.push(0);
                    p.extend_from_slice(&0u64.to_be_bytes());
                }
            }
            p.extend_from_slice(&meta.created_unix.to_be_bytes());
            (KIND_PUT, *seq, p)
        }
        Record::Del { seq, key } => {
            let k = key.as_str().as_bytes();
            let mut p = Vec::with_capacity(4 + k.len());
            p.extend_from_slice(&(k.len() as u32).to_be_bytes());
            p.extend_from_slice(k);
            (KIND_DEL, *seq, p)
        }
    };
    let mut out = Vec::with_capacity(REC_HEADER_LEN + payload.len());
    out.push(kind);
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(&payload).to_be_bytes());
    let header_crc = crc32(&out[..17]);
    out.extend_from_slice(&header_crc.to_be_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decode one record from the front of `bytes`. Returns the record and
/// the bytes consumed; `None` on a truncated tail or any checksum /
/// structure mismatch (the caller treats both as end-of-valid-data).
/// Never panics, whatever the input.
pub fn decode_record(bytes: &[u8]) -> Option<(Record, usize)> {
    if bytes.len() < REC_HEADER_LEN {
        return None;
    }
    let header = &bytes[..REC_HEADER_LEN];
    let stored_header_crc = u32::from_be_bytes(header[17..21].try_into().ok()?);
    if crc32(&header[..17]) != stored_header_crc {
        return None;
    }
    let kind = header[0];
    let seq = u64::from_be_bytes(header[1..9].try_into().ok()?);
    let payload_len = u32::from_be_bytes(header[9..13].try_into().ok()?) as usize;
    let payload_crc = u32::from_be_bytes(header[13..17].try_into().ok()?);
    let payload = bytes.get(REC_HEADER_LEN..REC_HEADER_LEN + payload_len)?;
    if crc32(payload) != payload_crc {
        return None;
    }
    let consumed = REC_HEADER_LEN + payload_len;
    let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
        let s = payload.get(*at..*at + n)?;
        *at += n;
        Some(s)
    };
    let mut at = 0usize;
    let rec = match kind {
        KIND_BODY => {
            let digest = Digest(take(&mut at, 32)?.try_into().ok()?);
            Record::Body {
                seq,
                digest,
                body: payload[at..].to_vec(),
            }
        }
        KIND_PUT => {
            let key_len = u32::from_be_bytes(take(&mut at, 4)?.try_into().ok()?) as usize;
            let key = std::str::from_utf8(take(&mut at, key_len)?).ok()?;
            let key = CacheKey::new(key);
            let digest = Digest(take(&mut at, 32)?.try_into().ok()?);
            let ct_len = u32::from_be_bytes(take(&mut at, 4)?.try_into().ok()?) as usize;
            let content_type = std::str::from_utf8(take(&mut at, ct_len)?)
                .ok()?
                .to_string();
            let exec_micros = u64::from_be_bytes(take(&mut at, 8)?.try_into().ok()?);
            let has_expiry = take(&mut at, 1)?[0];
            let expires_raw = u64::from_be_bytes(take(&mut at, 8)?.try_into().ok()?);
            let created_unix = u64::from_be_bytes(take(&mut at, 8)?.try_into().ok()?);
            if at != payload.len() {
                return None;
            }
            Record::Put {
                seq,
                key,
                digest,
                meta: HeaderMeta {
                    content_type,
                    exec_micros,
                    expires_unix: (has_expiry == 1).then_some(expires_raw),
                    created_unix,
                },
            }
        }
        KIND_DEL => {
            let key_len = u32::from_be_bytes(take(&mut at, 4)?.try_into().ok()?) as usize;
            let key = std::str::from_utf8(take(&mut at, key_len)?).ok()?;
            if at != payload.len() {
                return None;
            }
            Record::Del {
                seq,
                key: CacheKey::new(key),
            }
        }
        _ => return None,
    };
    Some((rec, consumed))
}

/// Construction parameters for a [`SegmentStore`].
#[derive(Debug, Clone)]
pub struct SegmentConfig {
    /// Roll to a new segment file once the current one reaches this
    /// many bytes.
    pub segment_bytes: u64,
    /// `sync_all` every put (and compaction output) before acking.
    pub fsync: bool,
    /// Run compaction once dead bytes across all segments exceed this.
    pub compact_min_dead: u64,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            segment_bytes: 16 * 1024 * 1024,
            fsync: true,
            compact_min_dead: 16 * 1024 * 1024,
        }
    }
}

/// A live key's index entry.
struct KeyEntry {
    digest: Digest,
    meta: HeaderMeta,
    seq: u64,
    /// Segment holding this key's put record, and its full length —
    /// what becomes dead bytes when the key is overwritten or deleted.
    segment: u64,
    rec_len: u64,
}

/// Where a deduped body physically lives.
struct BodyLoc {
    segment: u64,
    /// Offset of the raw body bytes (past header + digest).
    offset: u64,
    len: u64,
    /// CRC of the body bytes alone, re-verified on every read.
    crc: u32,
    rec_len: u64,
    /// Number of live keys mapping to this digest.
    refs: u64,
}

#[derive(Default, Clone, Copy)]
struct SegInfo {
    live: u64,
    dead: u64,
}

struct Inner {
    index: HashMap<CacheKey, KeyEntry>,
    bodies: HashMap<Digest, BodyLoc>,
    segments: BTreeMap<u64, SegInfo>,
    current: u64,
    writer: fs::File,
    written: u64,
    next_seq: u64,
    dedup_hits: u64,
    compactions: u64,
    compacted_bytes: u64,
    fsyncs: u64,
}

/// Append-only segment-log store. See the module docs for the format.
pub struct SegmentStore {
    root: PathBuf,
    cfg: SegmentConfig,
    inner: Mutex<Inner>,
}

fn seg_path(root: &Path, id: u64) -> PathBuf {
    root.join(format!("seg-{id:08}.swseg"))
}

fn seg_id(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let id = name.strip_prefix("seg-")?.strip_suffix(".swseg")?;
    id.parse().ok()
}

fn fsync_dir(root: &Path) -> io::Result<()> {
    fs::File::open(root)?.sync_all()
}

impl SegmentStore {
    /// Open (creating if needed) a store rooted at `root` with default
    /// tuning.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<SegmentStore> {
        Self::open_with(root, SegmentConfig::default())
    }

    /// Open with explicit tuning.
    pub fn open_with(root: impl Into<PathBuf>, cfg: SegmentConfig) -> io::Result<SegmentStore> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        // Reap leftovers from a crash mid-compaction (tmp outputs were
        // never renamed in, so they hold nothing committed).
        let mut seg_ids: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&root)?.filter_map(|e| e.ok()) {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("compact-") && name.ends_with(".tmp") {
                let _ = fs::remove_file(&path);
            } else if let Some(id) = seg_id(&path) {
                seg_ids.push(id);
            }
        }
        seg_ids.sort_unstable();

        let replayed = Self::replay(&root, &seg_ids)?;

        // Resume appending to the last segment if it still has room,
        // else start a fresh one.
        let open_id = match seg_ids.last() {
            Some(&last) => {
                let len = fs::metadata(seg_path(&root, last))
                    .map(|m| m.len())
                    .unwrap_or(0);
                if len < cfg.segment_bytes {
                    last
                } else {
                    last + 1
                }
            }
            None => 0,
        };
        let path = seg_path(&root, open_id);
        let (writer, written) = Self::open_segment(&root, &path, cfg.fsync)?;
        let mut segments = replayed.segments;
        segments.entry(open_id).or_default();
        Ok(SegmentStore {
            root,
            cfg,
            inner: Mutex::new(Inner {
                index: replayed.index,
                bodies: replayed.bodies,
                segments,
                current: open_id,
                writer,
                written,
                next_seq: replayed.max_seq + 1,
                dedup_hits: 0,
                compactions: 0,
                compacted_bytes: 0,
                fsyncs: 0,
            }),
        })
    }

    /// Open `path` for appending, writing the magic if it is new.
    /// Returns the handle and the current file length.
    fn open_segment(root: &Path, path: &Path, fsync: bool) -> io::Result<(fs::File, u64)> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let len = f.metadata()?.len();
        if len == 0 {
            f.write_all(SEG_MAGIC)?;
            if fsync {
                f.sync_all()?;
                fsync_dir(root)?;
            }
            return Ok((f, SEG_MAGIC.len() as u64));
        }
        Ok((f, len))
    }

    /// Scan every segment and rebuild the index, latest-wins by seq.
    /// Corruption is contained: a bad record in the *last* segment
    /// truncates the torn tail (appends resume there); in an earlier
    /// segment it skips the rest of that file. Never panics.
    fn replay(root: &Path, seg_ids: &[u64]) -> io::Result<Replayed> {
        struct PendingPut {
            seq: u64,
            digest: Digest,
            meta: HeaderMeta,
            segment: u64,
            rec_len: u64,
        }
        let mut puts: HashMap<CacheKey, PendingPut> = HashMap::new();
        let mut dels: HashMap<CacheKey, u64> = HashMap::new();
        let mut out = Replayed::default();
        let now = unix_now();

        for (i, &id) in seg_ids.iter().enumerate() {
            let is_last = i == seg_ids.len() - 1;
            let path = seg_path(root, id);
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(_) => continue,
            };
            out.segments.entry(id).or_default();
            if bytes.len() < SEG_MAGIC.len() || &bytes[..SEG_MAGIC.len()] != SEG_MAGIC {
                // Unrecognizable file: quarantine by truncation if it is
                // the tail we would append to, otherwise ignore it.
                if is_last {
                    fs::write(&path, SEG_MAGIC)?;
                }
                continue;
            }
            let mut at = SEG_MAGIC.len();
            while at < bytes.len() {
                let Some((rec, consumed)) = decode_record(&bytes[at..]) else {
                    // Torn or corrupt tail.
                    if is_last {
                        let f = fs::OpenOptions::new().write(true).open(&path)?;
                        f.set_len(at as u64)?;
                    } else {
                        add_dead(&mut out.segments, id, (bytes.len() - at) as u64);
                    }
                    break;
                };
                out.max_seq = out.max_seq.max(rec.seq());
                let rec_len = consumed as u64;
                match rec {
                    Record::Body {
                        seq: _,
                        digest,
                        body,
                    } => {
                        if out.bodies.contains_key(&digest) {
                            // Duplicate (e.g. crash mid-compaction left
                            // both copies): keep the first, dead-count
                            // the rest.
                            add_dead(&mut out.segments, id, rec_len);
                        } else {
                            add_live(&mut out.segments, id, rec_len);
                            out.bodies.insert(
                                digest,
                                BodyLoc {
                                    segment: id,
                                    offset: (at + REC_HEADER_LEN + 32) as u64,
                                    len: body.len() as u64,
                                    crc: crc32(&body),
                                    rec_len,
                                    refs: 0,
                                },
                            );
                        }
                    }
                    Record::Put {
                        seq,
                        key,
                        digest,
                        meta,
                    } => {
                        add_live(&mut out.segments, id, rec_len);
                        match puts.entry(key) {
                            std::collections::hash_map::Entry::Occupied(mut o) => {
                                if seq >= o.get().seq {
                                    let old = o.insert(PendingPut {
                                        seq,
                                        digest,
                                        meta,
                                        segment: id,
                                        rec_len,
                                    });
                                    mark_dead(&mut out.segments, old.segment, old.rec_len);
                                } else {
                                    mark_dead(&mut out.segments, id, rec_len);
                                }
                            }
                            std::collections::hash_map::Entry::Vacant(v) => {
                                v.insert(PendingPut {
                                    seq,
                                    digest,
                                    meta,
                                    segment: id,
                                    rec_len,
                                });
                            }
                        }
                    }
                    Record::Del { seq, key } => {
                        // Tombstones are pure overhead once replayed.
                        add_dead(&mut out.segments, id, rec_len);
                        let e = dels.entry(key).or_insert(seq);
                        *e = (*e).max(seq);
                    }
                }
                at += consumed;
            }
        }

        for (key, put) in puts {
            let deleted = dels.get(&key).is_some_and(|&d| d >= put.seq);
            let expired = put.meta.expires_unix.is_some_and(|e| e <= now);
            let body_ok = out.bodies.contains_key(&put.digest);
            if deleted || expired || !body_ok {
                mark_dead(&mut out.segments, put.segment, put.rec_len);
                continue;
            }
            out.bodies.get_mut(&put.digest).expect("checked above").refs += 1;
            out.index.insert(
                key,
                KeyEntry {
                    digest: put.digest,
                    meta: put.meta,
                    seq: put.seq,
                    segment: put.segment,
                    rec_len: put.rec_len,
                },
            );
        }
        // Bodies no live key references are dead weight for compaction.
        let mut orphaned: Vec<(u64, u64)> = Vec::new();
        out.bodies.retain(|_, loc| {
            if loc.refs == 0 {
                orphaned.push((loc.segment, loc.rec_len));
                false
            } else {
                true
            }
        });
        for (segment, rec_len) in orphaned {
            mark_dead(&mut out.segments, segment, rec_len);
        }
        Ok(out)
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn alloc_seq(inner: &mut Inner) -> u64 {
        let s = inner.next_seq;
        inner.next_seq += 1;
        s
    }

    /// Seal the current segment and start a fresh one if `incoming`
    /// bytes would push it past the roll threshold.
    fn roll_if_needed(&self, inner: &mut Inner, incoming: u64) -> io::Result<()> {
        if inner.written + incoming <= self.cfg.segment_bytes
            || inner.written <= SEG_MAGIC.len() as u64
        {
            return Ok(());
        }
        let next = inner.current + 1;
        let path = seg_path(&self.root, next);
        let (writer, written) = Self::open_segment(&self.root, &path, self.cfg.fsync)?;
        if self.cfg.fsync {
            inner.fsyncs += 2; // segment magic + directory entry
        }
        inner.segments.entry(next).or_default();
        inner.current = next;
        inner.writer = writer;
        inner.written = written;
        Ok(())
    }

    /// Append `batch` to the current segment, fsyncing when configured.
    fn append(&self, inner: &mut Inner, batch: &[u8]) -> io::Result<()> {
        inner.writer.write_all(batch)?;
        if self.cfg.fsync {
            inner.writer.sync_all()?;
            inner.fsyncs += 1;
        }
        inner.written += batch.len() as u64;
        Ok(())
    }

    /// Drop the caller's claim on `digest`; marks the body record dead
    /// when the last reference goes.
    fn release_digest(inner: &mut Inner, digest: &Digest) {
        if let Some(loc) = inner.bodies.get_mut(digest) {
            loc.refs = loc.refs.saturating_sub(1);
            if loc.refs == 0 {
                let (seg, len) = (loc.segment, loc.rec_len);
                inner.bodies.remove(digest);
                mark_dead(&mut inner.segments, seg, len);
            }
        }
    }

    fn total_dead(inner: &Inner) -> u64 {
        inner.segments.values().map(|s| s.dead).sum()
    }

    /// Rewrite all live records into fresh segments and delete the old
    /// files. Crash-safe: outputs are written to `compact-*.tmp`, synced,
    /// renamed in (new ids are strictly greater than every old id), and
    /// only then are old segments removed — records keep their original
    /// seqs, so replaying any intermediate state yields the same index.
    fn compact_locked(&self, inner: &mut Inner) -> io::Result<()> {
        let old_ids: Vec<u64> = inner.segments.keys().copied().collect();
        let old_bytes: u64 = inner
            .segments
            .values()
            .map(|s| s.live + s.dead)
            .sum::<u64>();
        let first_new = old_ids.last().map_or(0, |&m| m + 1);

        // Read every live body out of the old segments before touching
        // anything. Unreadable bodies (bit rot) are dropped along with
        // the keys that reference them — compaction must never panic.
        let mut live_bodies: Vec<(Digest, Vec<u8>)> = Vec::with_capacity(inner.bodies.len());
        let mut lost: Vec<Digest> = Vec::new();
        for (digest, loc) in &inner.bodies {
            match self.read_body_at(loc) {
                Ok(body) => live_bodies.push((*digest, body)),
                Err(_) => lost.push(*digest),
            }
        }
        for digest in &lost {
            inner.index.retain(|_, e| e.digest != *digest);
            inner.bodies.remove(digest);
        }
        live_bodies.sort_by_key(|(d, _)| *d);

        // Write the new segments: bodies first, then the puts (so a
        // replayed put always finds its body).
        let mut new_id = first_new;
        let mut out_path = self.root.join(format!("compact-{new_id:08}.tmp"));
        let mut out = fs::File::create(&out_path)?;
        out.write_all(SEG_MAGIC)?;
        let mut out_written = SEG_MAGIC.len() as u64;
        let mut renames: Vec<(PathBuf, u64)> = Vec::new();
        let mut new_segments: BTreeMap<u64, SegInfo> = BTreeMap::new();
        let mut new_body_loc: HashMap<Digest, BodyLoc> = HashMap::new();

        let roll = |out: &mut fs::File,
                    out_path: &mut PathBuf,
                    out_written: &mut u64,
                    new_id: &mut u64,
                    renames: &mut Vec<(PathBuf, u64)>,
                    incoming: u64|
         -> io::Result<()> {
            if *out_written + incoming <= self.cfg.segment_bytes
                || *out_written <= SEG_MAGIC.len() as u64
            {
                return Ok(());
            }
            if self.cfg.fsync {
                out.sync_all()?;
            }
            renames.push((out_path.clone(), *new_id));
            *new_id += 1;
            *out_path = self.root.join(format!("compact-{:08}.tmp", *new_id));
            *out = fs::File::create(&*out_path)?;
            out.write_all(SEG_MAGIC)?;
            *out_written = SEG_MAGIC.len() as u64;
            Ok(())
        };

        for (digest, body) in &live_bodies {
            // Body records carry no ordering semantics (puts reference
            // them by digest), so compacted copies use seq 0.
            let rec = encode_record(&Record::Body {
                seq: 0,
                digest: *digest,
                body: body.clone(),
            });
            roll(
                &mut out,
                &mut out_path,
                &mut out_written,
                &mut new_id,
                &mut renames,
                rec.len() as u64,
            )?;
            let offset = out_written + (REC_HEADER_LEN + 32) as u64;
            out.write_all(&rec)?;
            new_body_loc.insert(
                *digest,
                BodyLoc {
                    segment: new_id,
                    offset,
                    len: body.len() as u64,
                    crc: crc32(body),
                    rec_len: rec.len() as u64,
                    refs: inner.bodies[digest].refs,
                },
            );
            new_segments.entry(new_id).or_default().live += rec.len() as u64;
            out_written += rec.len() as u64;
        }
        let keys: Vec<CacheKey> = inner.index.keys().cloned().collect();
        for key in keys {
            let entry = inner.index.get(&key).expect("just listed");
            let rec = encode_record(&Record::Put {
                seq: entry.seq,
                key: key.clone(),
                digest: entry.digest,
                meta: entry.meta.clone(),
            });
            roll(
                &mut out,
                &mut out_path,
                &mut out_written,
                &mut new_id,
                &mut renames,
                rec.len() as u64,
            )?;
            out.write_all(&rec)?;
            let e = inner.index.get_mut(&key).expect("just listed");
            e.segment = new_id;
            e.rec_len = rec.len() as u64;
            new_segments.entry(new_id).or_default().live += rec.len() as u64;
            out_written += rec.len() as u64;
        }
        if self.cfg.fsync {
            out.sync_all()?;
            inner.fsyncs += 1;
        }
        renames.push((out_path, new_id));
        new_segments.entry(new_id).or_default();

        // Publish: rename every tmp into place, then drop the old files.
        for (tmp, id) in &renames {
            fs::rename(tmp, seg_path(&self.root, *id))?;
        }
        if self.cfg.fsync {
            fsync_dir(&self.root)?;
            inner.fsyncs += 1;
        }
        for id in &old_ids {
            let _ = fs::remove_file(seg_path(&self.root, *id));
        }

        inner.bodies = new_body_loc;
        inner.segments = new_segments;
        inner.current = new_id;
        let (writer, written) =
            Self::open_segment(&self.root, &seg_path(&self.root, new_id), self.cfg.fsync)?;
        inner.writer = writer;
        inner.written = written;
        inner.compactions += 1;
        let new_bytes: u64 = inner
            .segments
            .values()
            .map(|s| s.live + s.dead)
            .sum::<u64>();
        inner.compacted_bytes += old_bytes.saturating_sub(new_bytes);
        Ok(())
    }

    /// Read and CRC-verify a body at its recorded location.
    fn read_body_at(&self, loc: &BodyLoc) -> io::Result<Vec<u8>> {
        let mut f = fs::File::open(seg_path(&self.root, loc.segment))?;
        f.seek(SeekFrom::Start(loc.offset))?;
        let mut body = vec![0u8; loc.len as usize];
        f.read_exact(&mut body)?;
        if crc32(&body) != loc.crc {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "segment body failed CRC verification",
            ));
        }
        Ok(body)
    }

    /// Force a compaction pass (also triggered automatically once dead
    /// bytes exceed `compact_min_dead`).
    pub fn compact(&self) -> io::Result<()> {
        let mut inner = self.inner.lock();
        self.compact_locked(&mut inner)
    }

    fn maybe_compact(&self, inner: &mut Inner) -> io::Result<()> {
        if Self::total_dead(inner) > self.cfg.compact_min_dead {
            self.compact_locked(inner)?;
        }
        Ok(())
    }
}

/// Everything boot replay reconstructs from the segment files.
#[derive(Default)]
struct Replayed {
    index: HashMap<CacheKey, KeyEntry>,
    bodies: HashMap<Digest, BodyLoc>,
    segments: BTreeMap<u64, SegInfo>,
    max_seq: u64,
}

fn add_live(segments: &mut BTreeMap<u64, SegInfo>, segment: u64, bytes: u64) {
    segments.entry(segment).or_default().live += bytes;
}

fn add_dead(segments: &mut BTreeMap<u64, SegInfo>, segment: u64, bytes: u64) {
    segments.entry(segment).or_default().dead += bytes;
}

/// Retire bytes that were previously counted live.
fn mark_dead(segments: &mut BTreeMap<u64, SegInfo>, segment: u64, bytes: u64) {
    let info = segments.entry(segment).or_default();
    info.live = info.live.saturating_sub(bytes);
    info.dead += bytes;
}

impl Store for SegmentStore {
    fn put_described(&self, key: &CacheKey, meta: &HeaderMeta, body: &[u8]) -> io::Result<()> {
        self.put_digested(key, meta, &Digest::of(body), body)
    }

    fn put_digested(
        &self,
        key: &CacheKey,
        meta: &HeaderMeta,
        digest: &Digest,
        body: &[u8],
    ) -> io::Result<()> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;

        let need_body = !inner.bodies.contains_key(digest);
        let mut batch = Vec::new();
        let body_rec_len = if need_body {
            let seq = Self::alloc_seq(inner);
            batch.extend_from_slice(&encode_record(&Record::Body {
                seq,
                digest: *digest,
                body: body.to_vec(),
            }));
            batch.len() as u64
        } else {
            inner.dedup_hits += 1;
            0
        };
        let put_seq = Self::alloc_seq(inner);
        let put_rec = encode_record(&Record::Put {
            seq: put_seq,
            key: key.clone(),
            digest: *digest,
            meta: meta.clone(),
        });
        batch.extend_from_slice(&put_rec);

        self.roll_if_needed(inner, batch.len() as u64)?;
        let base = inner.written;
        self.append(inner, &batch)?;
        let segment = inner.current;

        if need_body {
            inner.bodies.insert(
                *digest,
                BodyLoc {
                    segment,
                    offset: base + (REC_HEADER_LEN + 32) as u64,
                    len: body.len() as u64,
                    crc: crc32(body),
                    rec_len: body_rec_len,
                    refs: 0,
                },
            );
            inner.segments.entry(segment).or_default().live += body_rec_len;
        }
        inner.segments.entry(segment).or_default().live += put_rec.len() as u64;

        // Retire the previous version of this key, then claim the new
        // digest (order matters when old and new digests are equal).
        if let Some(old) = inner.index.remove(key) {
            mark_dead(&mut inner.segments, old.segment, old.rec_len);
            Self::release_digest(inner, &old.digest);
        }
        inner
            .bodies
            .get_mut(digest)
            .expect("inserted or pre-existing")
            .refs += 1;
        inner.index.insert(
            key.clone(),
            KeyEntry {
                digest: *digest,
                meta: meta.clone(),
                seq: put_seq,
                segment,
                rec_len: put_rec.len() as u64,
            },
        );
        self.maybe_compact(inner)?;
        Ok(())
    }

    fn get(&self, key: &CacheKey) -> io::Result<Vec<u8>> {
        let inner = self.inner.lock();
        let entry = inner
            .index
            .get(key)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no body for {key}")))?;
        let loc = inner
            .bodies
            .get(&entry.digest)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "dangling digest"))?;
        self.read_body_at(loc)
    }

    fn delete(&self, key: &CacheKey) -> io::Result<()> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let Some(old) = inner.index.remove(key) else {
            return Ok(());
        };
        let seq = Self::alloc_seq(inner);
        let rec = encode_record(&Record::Del {
            seq,
            key: key.clone(),
        });
        self.roll_if_needed(inner, rec.len() as u64)?;
        self.append(inner, &rec)?;
        // The tombstone is immediately dead weight (it only matters for
        // replay until compaction removes the put it shadows), as is the
        // put record it retires.
        let current = inner.current;
        inner.segments.entry(current).or_default().dead += rec.len() as u64;
        mark_dead(&mut inner.segments, old.segment, old.rec_len);
        Self::release_digest(inner, &old.digest);
        self.maybe_compact(inner)?;
        Ok(())
    }

    fn contains(&self, key: &CacheKey) -> bool {
        self.inner.lock().index.contains_key(key)
    }

    fn len(&self) -> usize {
        self.inner.lock().index.len()
    }

    fn recover(&self) -> Vec<RecoveredEntry> {
        let inner = self.inner.lock();
        let now = unix_now();
        let mut out: Vec<RecoveredEntry> = inner
            .index
            .iter()
            .filter(|(_, e)| e.meta.expires_unix.is_none_or(|x| x > now))
            .map(|(key, e)| RecoveredEntry {
                key: key.clone(),
                content_type: e.meta.content_type.clone(),
                exec_micros: e.meta.exec_micros,
                expires_unix: e.meta.expires_unix,
                created_unix: e.meta.created_unix,
                size: inner.bodies.get(&e.digest).map_or(0, |l| l.len),
            })
            .collect();
        out.sort_by(|a, b| a.key.cmp(&b.key));
        out
    }

    fn metrics(&self) -> StoreMetrics {
        let inner = self.inner.lock();
        StoreMetrics {
            kind: "segment",
            segments: inner.segments.len() as u64,
            live_bytes: inner.segments.values().map(|s| s.live).sum(),
            dead_bytes: inner.segments.values().map(|s| s.dead).sum(),
            dedup_hits: inner.dedup_hits,
            compactions: inner.compactions,
            compacted_bytes: inner.compacted_bytes,
            bodies: inner.bodies.len() as u64,
            fsyncs: inner.fsyncs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "swala-segstore-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    /// Fast config for tests: no fsync, small segments.
    fn cfg(segment_bytes: u64) -> SegmentConfig {
        SegmentConfig {
            segment_bytes,
            fsync: false,
            compact_min_dead: u64::MAX,
        }
    }

    fn meta() -> HeaderMeta {
        HeaderMeta {
            content_type: "text/html".into(),
            exec_micros: 1000,
            expires_unix: None,
            created_unix: unix_now(),
        }
    }

    #[test]
    fn store_semantics() {
        let root = tmp_root("sem");
        let s = SegmentStore::open_with(&root, cfg(1 << 20)).unwrap();
        let k = CacheKey::new("/cgi-bin/adl?id=1&ms=40");
        assert!(!s.contains(&k));
        assert!(s.get(&k).is_err());
        s.put(&k, b"result-body").unwrap();
        assert!(s.contains(&k));
        assert_eq!(s.get(&k).unwrap(), b"result-body");
        assert_eq!(s.len(), 1);
        s.put(&k, b"v2").unwrap();
        assert_eq!(s.get(&k).unwrap(), b"v2");
        assert_eq!(s.len(), 1);
        s.delete(&k).unwrap();
        s.delete(&k).unwrap();
        assert!(!s.contains(&k));
        assert!(s.is_empty());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn record_roundtrip() {
        let recs = [
            Record::Body {
                seq: 7,
                digest: Digest::of(b"x"),
                body: b"x".to_vec(),
            },
            Record::Put {
                seq: 8,
                key: CacheKey::new("/k?q=1"),
                digest: Digest::of(b"x"),
                meta: HeaderMeta {
                    content_type: "t/x".into(),
                    exec_micros: 123,
                    expires_unix: Some(456),
                    created_unix: 789,
                },
            },
            Record::Del {
                seq: 9,
                key: CacheKey::new("/k?q=1"),
            },
        ];
        for rec in recs {
            let bytes = encode_record(&rec);
            let (back, used) = decode_record(&bytes).unwrap();
            assert_eq!(back, rec);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn persists_and_replays_across_reopen() {
        let root = tmp_root("reopen");
        {
            let s = SegmentStore::open_with(&root, cfg(1 << 20)).unwrap();
            for i in 0..20 {
                s.put_described(
                    &CacheKey::new(format!("/k?i={i}")),
                    &meta(),
                    format!("body{i}").as_bytes(),
                )
                .unwrap();
            }
            s.put(&CacheKey::new("/k?i=3"), b"rewritten").unwrap();
            s.delete(&CacheKey::new("/k?i=5")).unwrap();
        }
        let s = SegmentStore::open_with(&root, cfg(1 << 20)).unwrap();
        assert_eq!(s.len(), 19);
        assert_eq!(s.get(&CacheKey::new("/k?i=3")).unwrap(), b"rewritten");
        assert!(!s.contains(&CacheKey::new("/k?i=5")), "tombstone replayed");
        assert_eq!(s.get(&CacheKey::new("/k?i=7")).unwrap(), b"body7");
        // Appending still works after replay.
        s.put(&CacheKey::new("/new"), b"fresh").unwrap();
        assert_eq!(s.get(&CacheKey::new("/new")).unwrap(), b"fresh");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn dedup_stores_one_body_for_many_keys() {
        let root = tmp_root("dedup");
        let s = SegmentStore::open_with(&root, cfg(1 << 20)).unwrap();
        let body = vec![42u8; 4096];
        for i in 0..100 {
            s.put_described(&CacheKey::new(format!("/k?i={i}")), &meta(), &body)
                .unwrap();
        }
        let m = s.metrics();
        assert_eq!(m.bodies, 1, "one physical body");
        assert_eq!(m.dedup_hits, 99);
        // Disk usage: one body + 100 small index records, nowhere near
        // 100 bodies.
        let disk: u64 = fs::read_dir(&root)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.metadata().map(|m| m.len()).unwrap_or(0))
            .sum();
        assert!(
            disk < 2 * 4096 + 100 * 200,
            "disk {disk} should hold ~1 body copy"
        );
        // Every key still reads the right bytes.
        for i in (0..100).step_by(17) {
            assert_eq!(s.get(&CacheKey::new(format!("/k?i={i}"))).unwrap(), body);
        }
        // Dedup survives replay.
        drop(s);
        let s = SegmentStore::open_with(&root, cfg(1 << 20)).unwrap();
        assert_eq!(s.metrics().bodies, 1);
        assert_eq!(s.get(&CacheKey::new("/k?i=99")).unwrap(), body);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn deleting_one_sharer_keeps_the_body() {
        let root = tmp_root("share-del");
        let s = SegmentStore::open_with(&root, cfg(1 << 20)).unwrap();
        let a = CacheKey::new("/a");
        let b = CacheKey::new("/b");
        s.put(&a, b"shared").unwrap();
        s.put(&b, b"shared").unwrap();
        s.delete(&a).unwrap();
        assert_eq!(s.get(&b).unwrap(), b"shared");
        assert_eq!(s.metrics().bodies, 1);
        s.delete(&b).unwrap();
        assert_eq!(s.metrics().bodies, 0, "last ref drops the body");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume() {
        let root = tmp_root("torn");
        {
            let s = SegmentStore::open_with(&root, cfg(1 << 20)).unwrap();
            s.put(&CacheKey::new("/a"), b"alpha").unwrap();
            s.put(&CacheKey::new("/b"), b"beta").unwrap();
        }
        // Simulate a torn write: half a record at the tail.
        let seg = seg_path(&root, 0);
        let mut f = fs::OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[KIND_PUT, 0, 0, 0]).unwrap();
        drop(f);
        let s = SegmentStore::open_with(&root, cfg(1 << 20)).unwrap();
        assert_eq!(s.len(), 2, "acked entries survive the torn tail");
        assert_eq!(s.get(&CacheKey::new("/a")).unwrap(), b"alpha");
        s.put(&CacheKey::new("/c"), b"gamma").unwrap();
        drop(s);
        let s = SegmentStore::open_with(&root, cfg(1 << 20)).unwrap();
        assert_eq!(s.len(), 3, "append after truncation replays cleanly");
        assert_eq!(s.get(&CacheKey::new("/c")).unwrap(), b"gamma");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn corrupt_magic_never_panics() {
        let root = tmp_root("badmagic");
        fs::create_dir_all(&root).unwrap();
        fs::write(seg_path(&root, 0), b"not a segment at all").unwrap();
        let s = SegmentStore::open_with(&root, cfg(1 << 20)).unwrap();
        assert_eq!(s.len(), 0);
        s.put(&CacheKey::new("/x"), b"y").unwrap();
        assert_eq!(s.get(&CacheKey::new("/x")).unwrap(), b"y");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn bit_flip_in_body_is_invalid_data() {
        let root = tmp_root("flip");
        {
            let s = SegmentStore::open_with(&root, cfg(1 << 20)).unwrap();
            s.put(&CacheKey::new("/a"), &vec![7u8; 512]).unwrap();
        }
        // Flip one bit inside the body payload (past magic + header +
        // digest, safely inside the 512-byte body).
        let seg = seg_path(&root, 0);
        let mut bytes = fs::read(&seg).unwrap();
        let at = SEG_MAGIC.len() + REC_HEADER_LEN + 32 + 100;
        bytes[at] ^= 0x40;
        fs::write(&seg, &bytes).unwrap();
        // Replay drops the record (payload CRC fails ⇒ torn tail), so the
        // key is simply gone — never wrong bytes, never a panic.
        let s = SegmentStore::open_with(&root, cfg(1 << 20)).unwrap();
        match s.get(&CacheKey::new("/a")) {
            Err(e) => assert!(
                matches!(
                    e.kind(),
                    io::ErrorKind::NotFound | io::ErrorKind::InvalidData
                ),
                "{e:?}"
            ),
            Ok(body) => assert_eq!(body, vec![7u8; 512], "served bytes must be correct"),
        }
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn expired_entries_are_skipped_on_replay_and_recover() {
        let root = tmp_root("expire");
        {
            let s = SegmentStore::open_with(&root, cfg(1 << 20)).unwrap();
            s.put_described(
                &CacheKey::new("/dead"),
                &HeaderMeta {
                    expires_unix: Some(1),
                    ..meta()
                },
                b"stale",
            )
            .unwrap();
            s.put_described(&CacheKey::new("/live"), &meta(), b"fresh")
                .unwrap();
            let recovered = s.recover();
            assert_eq!(recovered.len(), 1, "recover() skips expired entries");
            assert_eq!(recovered[0].key.as_str(), "/live");
        }
        let s = SegmentStore::open_with(&root, cfg(1 << 20)).unwrap();
        assert!(!s.contains(&CacheKey::new("/dead")), "expired not replayed");
        assert!(s.contains(&CacheKey::new("/live")));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn segments_roll_at_the_size_bound() {
        let root = tmp_root("roll");
        let s = SegmentStore::open_with(&root, cfg(4096)).unwrap();
        for i in 0..16 {
            s.put_described(
                &CacheKey::new(format!("/k?i={i}")),
                &meta(),
                &vec![i as u8; 1024],
            )
            .unwrap();
        }
        assert!(s.metrics().segments > 1, "writes rolled segments");
        drop(s);
        let s = SegmentStore::open_with(&root, cfg(4096)).unwrap();
        assert_eq!(s.len(), 16);
        for i in 0..16 {
            assert_eq!(
                s.get(&CacheKey::new(format!("/k?i={i}"))).unwrap(),
                vec![i as u8; 1024]
            );
        }
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn compaction_drops_dead_records_and_preserves_live() {
        let root = tmp_root("compact");
        let s = SegmentStore::open_with(&root, cfg(4096)).unwrap();
        for round in 0..5 {
            for i in 0..8 {
                s.put_described(
                    &CacheKey::new(format!("/k?i={i}")),
                    &meta(),
                    format!("round-{round}-body-{i}-{}", "x".repeat(200)).as_bytes(),
                )
                .unwrap();
            }
        }
        s.delete(&CacheKey::new("/k?i=0")).unwrap();
        let before = s.metrics();
        assert!(before.dead_bytes > 0);
        s.compact().unwrap();
        let after = s.metrics();
        assert_eq!(after.compactions, 1);
        assert_eq!(after.dead_bytes, 0, "compaction drops all dead bytes");
        assert!(after.compacted_bytes > 0);
        assert_eq!(s.len(), 7);
        for i in 1..8 {
            assert_eq!(
                s.get(&CacheKey::new(format!("/k?i={i}"))).unwrap(),
                format!("round-4-body-{i}-{}", "x".repeat(200)).as_bytes()
            );
        }
        // And the compacted state replays.
        drop(s);
        let s = SegmentStore::open_with(&root, cfg(4096)).unwrap();
        assert_eq!(s.len(), 7);
        assert_eq!(
            s.get(&CacheKey::new(format!("/k?i=3"))).unwrap(),
            format!("round-4-body-3-{}", "x".repeat(200)).as_bytes()
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn auto_compaction_triggers_on_dead_bytes() {
        let root = tmp_root("autocompact");
        let s = SegmentStore::open_with(
            &root,
            SegmentConfig {
                segment_bytes: 1 << 20,
                fsync: false,
                compact_min_dead: 8 * 1024,
            },
        )
        .unwrap();
        let k = CacheKey::new("/hot");
        for round in 0..64 {
            s.put(&k, format!("{round}-{}", "y".repeat(512)).as_bytes())
                .unwrap();
        }
        let m = s.metrics();
        assert!(m.compactions >= 1, "overwrites should have compacted");
        assert!(m.dead_bytes <= 8 * 1024 + 1024);
        assert_eq!(
            s.get(&k).unwrap(),
            format!("63-{}", "y".repeat(512)).as_bytes()
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn leftover_compaction_tmp_is_swept() {
        let root = tmp_root("sweep");
        fs::create_dir_all(&root).unwrap();
        fs::write(root.join("compact-00000007.tmp"), b"half-finished").unwrap();
        let s = SegmentStore::open_with(&root, cfg(1 << 20)).unwrap();
        assert!(!root.join("compact-00000007.tmp").exists());
        s.put(&CacheKey::new("/x"), b"y").unwrap();
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn recovery_roundtrips_metadata() {
        let root = tmp_root("recmeta");
        {
            let s = SegmentStore::open_with(&root, cfg(1 << 20)).unwrap();
            s.put_described(
                &CacheKey::new("/cgi-bin/a?x=1"),
                &HeaderMeta {
                    content_type: "text/html".into(),
                    exec_micros: 1_600_000,
                    expires_unix: Some(9_999_999_999),
                    created_unix: 901_627_200,
                },
                b"body-a",
            )
            .unwrap();
        }
        let s = SegmentStore::open_with(&root, cfg(1 << 20)).unwrap();
        let recovered = s.recover();
        assert_eq!(recovered.len(), 1);
        let a = &recovered[0];
        assert_eq!(a.key.as_str(), "/cgi-bin/a?x=1");
        assert_eq!(a.content_type, "text/html");
        assert_eq!(a.exec_micros, 1_600_000);
        assert_eq!(a.expires_unix, Some(9_999_999_999));
        assert_eq!(a.created_unix, 901_627_200);
        assert_eq!(a.size, 6);
        assert_eq!(s.get(&a.key).unwrap(), b"body-a");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let root = tmp_root("conc");
        let s = Arc::new(SegmentStore::open_with(&root, cfg(64 * 1024)).unwrap());
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let k = CacheKey::new(format!("/t{t}?i={i}"));
                    s.put(&k, format!("{t}-{i}").as_bytes()).unwrap();
                    assert_eq!(s.get(&k).unwrap(), format!("{t}-{i}").as_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 200);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn crc32_known_vectors() {
        // The classic zlib check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
