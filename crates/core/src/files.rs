//! Static-file serving.
//!
//! The paper deliberately does *not* cache files (§4.1: file fetches are
//! network-bound, best cached at proxies near clients) — Swala just
//! serves them from the document root, relying on the operating system's
//! file-system cache to keep hot files in memory. We read through
//! `std::fs`, which on Linux goes through the page cache; the paper's
//! memory-mapped I/O is a non-allowed-dependency away and behaviourally
//! equivalent at these scales (see DESIGN.md substitutions).
//!
//! Conditional GET (`If-Modified-Since` → `304 Not Modified`) is
//! supported: it is how 1998 proxies validated files cached near the
//! client, the other half of the paper's caching story.

use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};
use swala_http::date::{parse_rfc1123, UtcDateTime};
use swala_http::{mime, Response, StatusCode};

/// Resolve a normalized request path against `docroot` and build the
/// response, honoring `If-Modified-Since` when present.
///
/// The path comes from `RequestTarget::parse`, which has already rejected
/// `..` escapes; this function still defends in depth by refusing any
/// resolved path that leaves the root (symlinks inside the root are the
/// administrator's own policy, as in the 1998 servers).
pub fn serve_file_conditional(
    docroot: &Path,
    request_path: &str,
    if_modified_since: Option<&str>,
) -> Response {
    debug_assert!(request_path.starts_with('/'));
    let relative = request_path.trim_start_matches('/');
    // Defense in depth: the parser never emits these, but never trust it.
    if relative.split('/').any(|seg| seg == "..") {
        return Response::error(StatusCode::FORBIDDEN);
    }
    let mut full: PathBuf = docroot.join(relative);
    if request_path.ends_with('/') || relative.is_empty() {
        full = full.join("index.html");
    }

    let mtime_unix = std::fs::metadata(&full)
        .ok()
        .filter(|m| m.is_file())
        .and_then(|m| m.modified().ok())
        .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
        .map(|d| d.as_secs());

    // Conditional GET: unchanged since the client's copy → 304.
    if let (Some(mtime), Some(ims)) = (mtime_unix, if_modified_since.and_then(parse_rfc1123)) {
        if mtime <= ims {
            let mut resp = Response::error(StatusCode::NOT_MODIFIED);
            resp.body.clear();
            resp.headers.set(
                "Last-Modified",
                UtcDateTime::from_unix_seconds(mtime as i64).to_rfc1123(),
            );
            return resp;
        }
    }

    match std::fs::read(&full) {
        Ok(body) => {
            let ctype = mime::for_path(&full.to_string_lossy());
            let mut resp = Response::ok(ctype, body);
            if let Some(mtime) = mtime_unix {
                resp.headers.set(
                    "Last-Modified",
                    UtcDateTime::from_unix_seconds(mtime as i64).to_rfc1123(),
                );
            }
            resp
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            Response::error(StatusCode::NOT_FOUND)
        }
        Err(e) if e.kind() == std::io::ErrorKind::PermissionDenied => {
            Response::error(StatusCode::FORBIDDEN)
        }
        // Directory without trailing slash and other oddities.
        Err(_) => Response::error(StatusCode::NOT_FOUND),
    }
}

/// Unconditional file serving (no validator header).
pub fn serve_file(docroot: &Path, request_path: &str) -> Response {
    serve_file_conditional(docroot, request_path, None)
}

/// Current time helper for tests constructing validators.
pub fn now_rfc1123() -> String {
    UtcDateTime::from_system_time(SystemTime::now()).to_rfc1123()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn docroot(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("swala-files-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(d.join("sub")).unwrap();
        fs::write(d.join("index.html"), "<h1>root index</h1>").unwrap();
        fs::write(d.join("page.html"), "<p>page</p>").unwrap();
        fs::write(d.join("image.gif"), b"GIF89a...").unwrap();
        fs::write(d.join("sub/index.html"), "<h1>sub index</h1>").unwrap();
        fs::write(d.join("sub/data.bin"), [0u8, 1, 2]).unwrap();
        d
    }

    #[test]
    fn serves_files_with_mime() {
        let root = docroot("mime");
        let r = serve_file(&root, "/page.html");
        assert_eq!(r.status, StatusCode::OK);
        assert_eq!(r.headers.get("Content-Type"), Some("text/html"));
        assert_eq!(r.body, b"<p>page</p>");
        assert!(r.headers.get("Last-Modified").unwrap().ends_with("GMT"));

        let r = serve_file(&root, "/image.gif");
        assert_eq!(r.headers.get("Content-Type"), Some("image/gif"));

        let r = serve_file(&root, "/sub/data.bin");
        assert_eq!(
            r.headers.get("Content-Type"),
            Some("application/octet-stream")
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn directory_requests_get_index() {
        let root = docroot("index");
        assert_eq!(serve_file(&root, "/").body, b"<h1>root index</h1>");
        assert_eq!(serve_file(&root, "/sub/").body, b"<h1>sub index</h1>");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn missing_file_is_404() {
        let root = docroot("missing");
        assert_eq!(
            serve_file(&root, "/ghost.html").status,
            StatusCode::NOT_FOUND
        );
        assert_eq!(
            serve_file(&root, "/no/such/dir/").status,
            StatusCode::NOT_FOUND
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn traversal_defense_in_depth() {
        let root = docroot("traversal");
        // The HTTP parser would never produce this, but serve_file must
        // still refuse it.
        assert_eq!(
            serve_file(&root, "/../etc/passwd").status,
            StatusCode::FORBIDDEN
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn directory_without_slash_is_404_not_panic() {
        let root = docroot("noslash");
        let r = serve_file(&root, "/sub");
        assert_eq!(r.status, StatusCode::NOT_FOUND);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn conditional_get_304_when_unchanged() {
        let root = docroot("cond");
        // Validator from the future: the file is definitely older.
        let future = "Fri, 01 Jan 2100 00:00:00 GMT";
        let r = serve_file_conditional(&root, "/page.html", Some(future));
        assert_eq!(r.status, StatusCode::NOT_MODIFIED);
        assert!(r.body.is_empty(), "304 carries no body");
        assert!(r.headers.contains("Last-Modified"));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn conditional_get_full_body_when_changed() {
        let root = docroot("cond2");
        // Validator far in the past: the file is newer.
        let past = "Thu, 01 Jan 1970 00:00:00 GMT";
        let r = serve_file_conditional(&root, "/page.html", Some(past));
        assert_eq!(r.status, StatusCode::OK);
        assert_eq!(r.body, b"<p>page</p>");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn garbage_validator_ignored() {
        let root = docroot("cond3");
        let r = serve_file_conditional(&root, "/page.html", Some("not-a-date"));
        assert_eq!(r.status, StatusCode::OK);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn conditional_on_missing_file_is_404() {
        let root = docroot("cond4");
        let future = "Fri, 01 Jan 2100 00:00:00 GMT";
        let r = serve_file_conditional(&root, "/ghost.html", Some(future));
        assert_eq!(r.status, StatusCode::NOT_FOUND);
        let _ = fs::remove_dir_all(root);
    }
}
