//! The §3 / Table 1 access-log analysis.
//!
//! "The first column shows the lower time threshold for requests included
//! in the detailed study. The second column shows the number of requests
//! taking longer than that threshold. The third column shows the total
//! number of requests that were a repeat of a previous request. The
//! fourth column shows the number of entries needed in the cache to
//! exploit all repetition. The fifth column shows the potential time
//! saving by fetching the repeated requests from cache. The sixth column
//! shows the percentage of the total service time that could have been
//! saved by CGI caching."

use crate::trace::Trace;
use std::collections::HashMap;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdRow {
    /// Threshold in seconds.
    pub threshold_secs: f64,
    /// Requests with service time ≥ threshold.
    pub long_requests: usize,
    /// Among those, occurrences that repeat an earlier identical request.
    pub total_repeats: usize,
    /// Distinct targets accounting for those repeats (= cache entries
    /// needed to exploit all repetition).
    pub unique_repeats: usize,
    /// Seconds saved by serving every repeat from cache.
    pub saved_secs: f64,
    /// `saved_secs` as a share of the whole trace's service time.
    pub saved_pct: f64,
}

/// Compute Table 1 rows for the given thresholds (in seconds).
pub fn analyze_thresholds(trace: &Trace, thresholds_secs: &[f64]) -> Vec<ThresholdRow> {
    let total_secs = trace.total_service_micros() as f64 / 1e6;
    thresholds_secs
        .iter()
        .map(|&t| {
            let threshold_micros = (t * 1e6) as u64;
            let mut occurrences: HashMap<&str, usize> = HashMap::new();
            let mut long_requests = 0;
            let mut total_repeats = 0;
            let mut unique_repeats = 0;
            let mut saved_micros: u64 = 0;
            for r in &trace.requests {
                if r.service_micros < threshold_micros {
                    continue;
                }
                long_requests += 1;
                let count = occurrences.entry(r.target.as_str()).or_insert(0);
                *count += 1;
                match *count {
                    1 => {}
                    2 => {
                        // First repeat of this target.
                        unique_repeats += 1;
                        total_repeats += 1;
                        saved_micros += r.service_micros;
                    }
                    _ => {
                        total_repeats += 1;
                        saved_micros += r.service_micros;
                    }
                }
            }
            let saved_secs = saved_micros as f64 / 1e6;
            ThresholdRow {
                threshold_secs: t,
                long_requests,
                total_repeats,
                unique_repeats,
                saved_secs,
                saved_pct: if total_secs > 0.0 {
                    100.0 * saved_secs / total_secs
                } else {
                    0.0
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adl::{synthesize_adl_trace, AdlTraceConfig};
    use crate::trace::TraceRequest;

    #[test]
    fn hand_computed_example() {
        // a(2s) ×3, b(0.6s) ×2, c(5s) ×1, file(0.03s) ×2
        let trace = Trace::new(vec![
            TraceRequest::dynamic(1, 2_000_000, 50),
            TraceRequest::dynamic(2, 600_000, 15),
            TraceRequest::dynamic(1, 2_000_000, 50),
            TraceRequest::file("/f", 30_000),
            TraceRequest::dynamic(3, 5_000_000, 125),
            TraceRequest::dynamic(2, 600_000, 15),
            TraceRequest::dynamic(1, 2_000_000, 50),
            TraceRequest::file("/f", 30_000),
        ]);
        // total = 3*2 + 2*0.6 + 5 + 2*0.03 = 12.26s
        let rows = analyze_thresholds(&trace, &[0.5, 1.0, 4.0]);

        // Threshold 0.5: long = 6 (a×3, b×2, c); repeats = 2(a) + 1(b) = 3;
        // unique = 2; saved = 2*2 + 0.6 = 4.6s.
        assert_eq!(rows[0].long_requests, 6);
        assert_eq!(rows[0].total_repeats, 3);
        assert_eq!(rows[0].unique_repeats, 2);
        assert!((rows[0].saved_secs - 4.6).abs() < 1e-9);
        assert!((rows[0].saved_pct - 100.0 * 4.6 / 12.26).abs() < 1e-6);

        // Threshold 1.0: b drops out; long = 4; repeats = 2(a); saved = 4s.
        assert_eq!(rows[1].long_requests, 4);
        assert_eq!(rows[1].total_repeats, 2);
        assert_eq!(rows[1].unique_repeats, 1);
        assert!((rows[1].saved_secs - 4.0).abs() < 1e-9);

        // Threshold 4.0: only c qualifies; no repeats.
        assert_eq!(rows[2].long_requests, 1);
        assert_eq!(rows[2].total_repeats, 0);
        assert_eq!(rows[2].unique_repeats, 0);
        assert_eq!(rows[2].saved_secs, 0.0);
    }

    #[test]
    fn empty_trace_yields_zero_rows() {
        let rows = analyze_thresholds(&Trace::default(), &[1.0]);
        assert_eq!(rows[0].long_requests, 0);
        assert_eq!(rows[0].saved_pct, 0.0);
    }

    #[test]
    fn monotonicity_in_threshold() {
        let trace = synthesize_adl_trace(&AdlTraceConfig {
            total_requests: 5000,
            ..Default::default()
        });
        let rows = analyze_thresholds(&trace, &[0.5, 1.0, 2.0, 4.0]);
        for pair in rows.windows(2) {
            assert!(pair[1].long_requests <= pair[0].long_requests);
            assert!(pair[1].total_repeats <= pair[0].total_repeats);
            assert!(pair[1].saved_secs <= pair[0].saved_secs + 1e-9);
        }
    }

    #[test]
    fn default_trace_reproduces_paper_one_second_row() {
        // Paper, Table 1 at the 1-second threshold: 189 unique entries
        // absorb 2,899 repeats, saving 13,241 s ≈ 29 % of 46,156 s.
        // The synthesized trace must land in the same regime.
        let trace = synthesize_adl_trace(&AdlTraceConfig::default());
        let row = &analyze_thresholds(&trace, &[1.0])[0];
        assert!(
            (100..=400).contains(&row.unique_repeats),
            "unique entries {} vs paper 189",
            row.unique_repeats
        );
        assert!(
            (2000..=4500).contains(&row.total_repeats),
            "repeats {} vs paper 2,899",
            row.total_repeats
        );
        assert!(
            (20.0..=36.0).contains(&row.saved_pct),
            "saved {}% vs paper ~28.7%",
            row.saved_pct
        );
    }
}
