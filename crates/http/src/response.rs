//! HTTP response construction, serialization and (client-side) parsing.

use crate::body::Body;
use crate::error::{HttpError, Result};
use crate::headers::{parse_header_line, HeaderMap};
use crate::status::StatusCode;
use crate::version::Version;
use std::io::{self, BufRead, IoSlice, Write};

/// An HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    pub version: Version,
    pub status: StatusCode,
    pub headers: HeaderMap,
    pub body: Body,
}

impl Response {
    /// A `200 OK` response with the given content type and body.
    pub fn ok(content_type: &str, body: impl Into<Body>) -> Response {
        let mut r = Response {
            version: Version::Http10,
            status: StatusCode::OK,
            headers: HeaderMap::new(),
            body: body.into(),
        };
        r.headers.set("Content-Type", content_type);
        r
    }

    /// An error response with a small HTML body.
    pub fn error(status: StatusCode) -> Response {
        let body = format!(
            "<html><head><title>{status}</title></head>\
             <body><h1>{status}</h1><p>Swala server.</p></body></html>\n"
        );
        let mut r = Response::ok("text/html", body);
        r.status = status;
        r
    }

    /// Set the `Connection` header according to the keep-alive decision.
    pub fn set_keep_alive(&mut self, keep: bool) {
        self.headers
            .set("Connection", if keep { "keep-alive" } else { "close" });
    }

    /// Server identification header.
    pub fn set_server(&mut self, name: &str) {
        self.headers.set("Server", name);
    }

    /// Write this response to `out`, framing the body with `Content-Length`.
    ///
    /// Header and body go out through one vectored write, so a shared
    /// (cached) body reaches the socket without ever being copied into a
    /// response-sized buffer — the zero-copy half of the cache hit path.
    ///
    /// When `include_body` is false (HEAD requests) the headers still
    /// advertise the full length but no body bytes are sent.
    pub fn write_to<W: Write>(&self, out: &mut W, include_body: bool) -> Result<()> {
        let head = self.head_bytes();
        let body: &[u8] = if include_body { &self.body } else { &[] };
        write_all_vectored(out, &head, body)?;
        out.flush()?;
        Ok(())
    }

    /// Serialize the status line and headers (through the terminating
    /// blank line) exactly as [`write_to`](Self::write_to) sends them.
    /// Nonblocking writers use this to stage the head once and then push
    /// head + body out in resumable partial writes.
    pub fn head_bytes(&self) -> Vec<u8> {
        let mut head = Vec::with_capacity(256);
        head.extend_from_slice(self.version.as_str().as_bytes());
        head.push(b' ');
        head.extend_from_slice(self.status.to_string().as_bytes());
        head.extend_from_slice(b"\r\n");
        for h in self.headers.iter() {
            if h.name.eq_ignore_ascii_case("Content-Length") {
                continue; // authoritative value computed below
            }
            head.extend_from_slice(h.name.as_bytes());
            head.extend_from_slice(b": ");
            head.extend_from_slice(h.value.as_bytes());
            head.extend_from_slice(b"\r\n");
        }
        head.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        head.extend_from_slice(b"\r\n");
        head
    }

    /// Serialize to a byte vector (body included).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(256 + self.body.len());
        self.write_to(&mut v, true)
            .expect("writing to Vec cannot fail");
        v
    }

    /// Parse a response from `reader` (used by load-generator clients).
    pub fn read_from<R: BufRead>(reader: &mut R) -> Result<Response> {
        Self::read_from_expecting(reader, true)
    }

    /// Parse a response, optionally without reading a body.
    ///
    /// Pass `expect_body = false` for responses to HEAD requests, whose
    /// `Content-Length` describes the entity that *would* have been sent.
    pub fn read_from_expecting<R: BufRead>(reader: &mut R, expect_body: bool) -> Result<Response> {
        let status_line = read_line(reader)?;
        let mut parts = status_line.splitn(3, ' ');
        let version: Version = parts
            .next()
            .ok_or_else(|| HttpError::BadRequestLine(status_line.clone()))?
            .parse()?;
        let code: u16 = parts
            .next()
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| HttpError::BadRequestLine(status_line.clone()))?;
        // Reason phrase (rest of line) is ignored.
        let mut headers = HeaderMap::new();
        loop {
            let line = read_line(reader)?;
            if line.is_empty() {
                break;
            }
            let h = parse_header_line(&line).ok_or_else(|| HttpError::BadHeader(line.clone()))?;
            headers.append(h.name, h.value);
        }
        let len = if expect_body {
            headers
                .content_length()
                .map_err(HttpError::BadContentLength)?
                .unwrap_or(0)
        } else {
            0
        };
        let mut body = vec![0u8; len];
        if len > 0 {
            reader.read_exact(&mut body)?;
        }
        Ok(Response {
            version,
            status: StatusCode(code),
            headers,
            body: body.into(),
        })
    }
}

/// Write `head` then `body` as one logical stream, preferring a single
/// vectored write. Partial writes are resumed without re-sending bytes;
/// the body buffer is never copied.
fn write_all_vectored<W: Write>(out: &mut W, head: &[u8], body: &[u8]) -> Result<()> {
    let mut head_off = 0usize;
    let mut body_off = 0usize;
    while head_off < head.len() || body_off < body.len() {
        let n = if head_off < head.len() && !body.is_empty() {
            let slices = [IoSlice::new(&head[head_off..]), IoSlice::new(body)];
            out.write_vectored(&slices)?
        } else if head_off < head.len() {
            out.write(&head[head_off..])?
        } else {
            out.write(&body[body_off..])?
        };
        if n == 0 {
            return Err(HttpError::Io(io::Error::new(
                io::ErrorKind::WriteZero,
                "failed to write response",
            )));
        }
        let head_take = n.min(head.len() - head_off);
        head_off += head_take;
        body_off += n - head_take;
    }
    Ok(())
}

fn read_line<R: BufRead>(reader: &mut R) -> Result<String> {
    let mut s = String::new();
    let n = reader.read_line(&mut s)?;
    if n == 0 {
        return Err(HttpError::ConnectionClosed { clean: false });
    }
    while s.ends_with('\n') || s.ends_with('\r') {
        s.pop();
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn ok_roundtrip() {
        let mut r = Response::ok("text/plain", "hello");
        r.set_keep_alive(true);
        r.set_server("swala/0.1");
        let bytes = r.to_bytes();
        let parsed = Response::read_from(&mut BufReader::new(&bytes[..])).unwrap();
        assert_eq!(parsed.status, StatusCode::OK);
        assert_eq!(parsed.body, b"hello");
        assert_eq!(parsed.headers.get("content-type"), Some("text/plain"));
        assert_eq!(parsed.headers.get("server"), Some("swala/0.1"));
        assert!(parsed.headers.keep_alive(parsed.version));
    }

    #[test]
    fn content_length_is_authoritative() {
        let mut r = Response::ok("text/plain", "abc");
        // A stale manual Content-Length must be overridden on the wire.
        r.headers.set("Content-Length", "9999");
        let bytes = r.to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(!text.contains("9999"));
    }

    #[test]
    fn head_omits_body_keeps_length() {
        let r = Response::ok("text/plain", "abcdef");
        let mut out = Vec::new();
        r.write_to(&mut out, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Length: 6"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    #[test]
    fn error_pages_contain_status() {
        let r = Response::error(StatusCode::NOT_FOUND);
        assert_eq!(r.status, StatusCode::NOT_FOUND);
        let body = String::from_utf8(r.body.to_vec()).unwrap();
        assert!(body.contains("404 Not Found"));
    }

    #[test]
    fn parse_rejects_truncated() {
        let full = Response::ok("text/plain", "0123456789").to_bytes();
        let cut = &full[..full.len() - 4];
        assert!(Response::read_from(&mut BufReader::new(cut)).is_err());
    }

    #[test]
    fn parse_empty_body() {
        let r = Response::error(StatusCode::NO_CONTENT);
        let mut r = r;
        r.body.clear();
        let parsed = Response::read_from(&mut BufReader::new(&r.to_bytes()[..])).unwrap();
        assert!(parsed.body.is_empty());
        assert_eq!(parsed.status.as_u16(), 204);
    }

    #[test]
    fn shared_body_serves_identical_bytes() {
        use std::sync::Arc;
        let buf: Arc<[u8]> = Arc::from(b"zero-copy-body".as_slice());
        let r = Response::ok("text/plain", Body::from(Arc::clone(&buf)));
        // The response holds the same allocation, not a copy.
        assert!(Arc::ptr_eq(r.body.as_shared().unwrap(), &buf));
        let parsed = Response::read_from(&mut BufReader::new(&r.to_bytes()[..])).unwrap();
        assert_eq!(parsed.body, b"zero-copy-body");
    }

    /// A writer that accepts one byte per call, exercising the partial
    /// write resumption of the vectored path.
    struct TrickleWriter(Vec<u8>);
    impl std::io::Write for TrickleWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if buf.is_empty() {
                return Ok(0);
            }
            self.0.push(buf[0]);
            Ok(1)
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> std::io::Result<usize> {
            for b in bufs {
                if !b.is_empty() {
                    return self.write(b);
                }
            }
            Ok(0)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn partial_writes_are_resumed() {
        let r = Response::ok("text/plain", "slow but complete");
        let mut w = TrickleWriter(Vec::new());
        r.write_to(&mut w, true).unwrap();
        let parsed = Response::read_from(&mut BufReader::new(&w.0[..])).unwrap();
        assert_eq!(parsed.body, b"slow but complete");
    }

    #[test]
    fn sequential_responses_on_one_stream() {
        let a = Response::ok("text/plain", "first").to_bytes();
        let b = Response::ok("text/plain", "second").to_bytes();
        let wire: Vec<u8> = a.into_iter().chain(b).collect();
        let mut reader = BufReader::new(&wire[..]);
        assert_eq!(Response::read_from(&mut reader).unwrap().body, b"first");
        assert_eq!(Response::read_from(&mut reader).unwrap().body, b"second");
    }
}
