//! One module per reproduced table/figure, plus the ablations.

pub mod ablations;
pub mod broadcast;
pub mod coalesce;
pub mod directory;
pub mod faults;
pub mod fig3;
pub mod fig4;
pub mod hitpath;
pub mod metrics;
pub mod obsplane;
pub mod store;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table56;

use crate::report::TableReport;

/// Every experiment id the `tables` binary accepts, in paper order.
pub const ALL_IDS: &[&str] = &[
    "table1",
    "table2",
    "fig3",
    "fig4",
    "fig4-sim",
    "table3",
    "table4",
    "table5",
    "table6",
    "policies",
    "policies-hetero",
    "falsemiss",
    "locking",
    "broadcast",
    "directory",
    "faults",
    "hitpath",
    "coalesce",
    "metrics",
    "obsplane",
    "store",
];

/// Run one experiment by id.
pub fn run(id: &str) -> Option<TableReport> {
    Some(match id {
        "table1" => table1::run(),
        "table2" => table2::run(),
        "fig3" => fig3::run(),
        "fig4" => fig4::run(),
        "fig4-sim" => fig4::run_sim(),
        "table3" => table3::run(),
        "table4" => table4::run(),
        "table5" => table56::run_table5(),
        "table6" => table56::run_table6(),
        "policies" => ablations::run_policies(),
        "policies-hetero" => ablations::run_policies_hetero(),
        "falsemiss" => ablations::run_false_consistency(),
        "locking" => ablations::run_locking(),
        "broadcast" => broadcast::run(),
        "directory" => directory::run(),
        "faults" => faults::run(),
        "hitpath" => hitpath::run(),
        "coalesce" => coalesce::run(),
        "metrics" => metrics::run(),
        "obsplane" => obsplane::run(),
        "store" => store::run(),
        _ => return None,
    })
}
