//! Request targets: path + query parsing, percent decoding, normalization.
//!
//! Cache keys in Swala are derived from the request target, so two spellings
//! of the same CGI invocation must normalize identically, and path traversal
//! (`..`) must be rejected before a file or program is resolved.

use crate::error::{HttpError, Result};
use std::fmt;

/// A parsed origin-form request target (`/path/to/x?query`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RequestTarget {
    /// Percent-decoded, `.`/`..`-normalized absolute path. Always starts
    /// with `/`.
    pub path: String,
    /// The raw (still percent-encoded) query string, without the leading
    /// `?`. `None` when no `?` was present; `Some("")` for a bare `?`.
    pub query: Option<String>,
}

impl RequestTarget {
    /// Parse an origin-form target from the request line.
    ///
    /// Absolute-form targets (`http://host/path`) are accepted and reduced
    /// to origin form, as RFC 1945 requires of proxies-capable servers.
    pub fn parse(raw: &str) -> Result<RequestTarget> {
        if raw.is_empty() {
            return Err(HttpError::BadTarget(raw.to_string()));
        }
        // Strip absolute-form scheme+authority if present.
        let origin = if let Some(rest) = strip_scheme_authority(raw) {
            rest
        } else {
            raw
        };
        if !origin.starts_with('/') {
            return Err(HttpError::BadTarget(raw.to_string()));
        }
        let (path_part, query) = match origin.find('?') {
            Some(i) => (&origin[..i], Some(origin[i + 1..].to_string())),
            None => (origin, None),
        };
        let decoded =
            decode_percent(path_part).ok_or_else(|| HttpError::BadTarget(raw.to_string()))?;
        if decoded.bytes().any(|b| b == 0) {
            return Err(HttpError::BadTarget(raw.to_string()));
        }
        let path = normalize_path(&decoded).ok_or_else(|| HttpError::BadTarget(raw.to_string()))?;
        Ok(RequestTarget { path, query })
    }

    /// The canonical string form used as the dynamic-content cache key:
    /// normalized path plus the raw query (queries are significant bytes
    /// for CGI, so they are *not* decoded).
    pub fn cache_key_string(&self) -> String {
        match &self.query {
            Some(q) => format!("{}?{}", self.path, q),
            None => self.path.clone(),
        }
    }

    /// Decode the query string into `(key, value)` pairs.
    ///
    /// Uses `application/x-www-form-urlencoded` rules: `&`-separated pairs,
    /// `=`-split, `+` means space, `%XX` decoding. Undecodable components
    /// are preserved raw rather than dropped (CGI programs see them as-is).
    pub fn query_pairs(&self) -> Vec<(String, String)> {
        let Some(q) = &self.query else {
            return Vec::new();
        };
        q.split('&')
            .filter(|s| !s.is_empty())
            .map(|pair| {
                let (k, v) = match pair.find('=') {
                    Some(i) => (&pair[..i], &pair[i + 1..]),
                    None => (pair, ""),
                };
                (decode_form(k), decode_form(v))
            })
            .collect()
    }

    /// File extension of the path, lowercased, if any.
    pub fn extension(&self) -> Option<&str> {
        let file = self.path.rsplit('/').next()?;
        let dot = file.rfind('.')?;
        if dot == 0 || dot + 1 == file.len() {
            return None;
        }
        Some(&file[dot + 1..])
    }
}

impl fmt::Display for RequestTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.cache_key_string())
    }
}

/// If `raw` is absolute-form, return the part starting at the path.
fn strip_scheme_authority(raw: &str) -> Option<&str> {
    let rest = raw
        .strip_prefix("http://")
        .or_else(|| raw.strip_prefix("https://"))?;
    match rest.find('/') {
        Some(i) => Some(&rest[i..]),
        // `http://host` with no path means `/`.
        None => Some("/"),
    }
}

/// Percent-decode a string. Returns `None` on truncated or non-hex escapes
/// or if the result is not valid UTF-8.
pub fn decode_percent(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = hex_val(*bytes.get(i + 1)?)?;
                let lo = hex_val(*bytes.get(i + 2)?)?;
                out.push(hi * 16 + lo);
                i += 3;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// Form decoding: like percent decoding but `+` becomes space, and invalid
/// escapes pass through verbatim (lenient, as CGI libraries of the era were).
fn decode_form(s: &str) -> String {
    let replaced = s.replace('+', " ");
    decode_percent(&replaced).unwrap_or(replaced)
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Normalize `.` and `..` segments and collapse duplicate slashes.
///
/// Returns `None` when `..` would escape the root — the caller must treat
/// that as a malformed (hostile) request, never resolve it against the
/// document root.
fn normalize_path(path: &str) -> Option<String> {
    debug_assert!(path.starts_with('/'));
    let mut segments: Vec<&str> = Vec::new();
    for seg in path.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                segments.pop()?;
            }
            s => segments.push(s),
        }
    }
    let trailing_slash = path.ends_with('/') && !segments.is_empty();
    let mut out = String::with_capacity(path.len());
    for s in &segments {
        out.push('/');
        out.push_str(s);
    }
    if out.is_empty() || trailing_slash {
        out.push('/');
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let t = RequestTarget::parse("/index.html").unwrap();
        assert_eq!(t.path, "/index.html");
        assert_eq!(t.query, None);
        assert_eq!(t.cache_key_string(), "/index.html");
    }

    #[test]
    fn parse_with_query() {
        let t = RequestTarget::parse("/cgi-bin/map?x=1&y=2").unwrap();
        assert_eq!(t.path, "/cgi-bin/map");
        assert_eq!(t.query.as_deref(), Some("x=1&y=2"));
        assert_eq!(t.cache_key_string(), "/cgi-bin/map?x=1&y=2");
    }

    #[test]
    fn bare_question_mark() {
        let t = RequestTarget::parse("/a?").unwrap();
        assert_eq!(t.query.as_deref(), Some(""));
        assert_eq!(t.cache_key_string(), "/a?");
    }

    #[test]
    fn percent_decoding_in_path_only() {
        let t = RequestTarget::parse("/a%20b?q=%20").unwrap();
        assert_eq!(t.path, "/a b");
        // Query stays raw in the key...
        assert_eq!(t.query.as_deref(), Some("q=%20"));
        // ...but decodes in pairs.
        assert_eq!(t.query_pairs(), vec![("q".to_string(), " ".to_string())]);
    }

    #[test]
    fn plus_means_space_in_query_not_path() {
        let t = RequestTarget::parse("/a+b?k=v+w").unwrap();
        assert_eq!(t.path, "/a+b");
        assert_eq!(t.query_pairs(), vec![("k".to_string(), "v w".to_string())]);
    }

    #[test]
    fn dot_and_dotdot_normalization() {
        assert_eq!(RequestTarget::parse("/a/./b").unwrap().path, "/a/b");
        assert_eq!(RequestTarget::parse("/a/b/../c").unwrap().path, "/a/c");
        assert_eq!(RequestTarget::parse("//a///b").unwrap().path, "/a/b");
        assert_eq!(RequestTarget::parse("/a/b/..").unwrap().path, "/a");
        assert_eq!(RequestTarget::parse("/..a/b").unwrap().path, "/..a/b");
    }

    #[test]
    fn traversal_escape_rejected() {
        assert!(RequestTarget::parse("/../etc/passwd").is_err());
        assert!(RequestTarget::parse("/a/../../etc").is_err());
        // Encoded traversal decodes first, then normalizes, then escapes.
        assert!(RequestTarget::parse("/%2e%2e/etc").is_err());
    }

    #[test]
    fn root_and_trailing_slash() {
        assert_eq!(RequestTarget::parse("/").unwrap().path, "/");
        assert_eq!(RequestTarget::parse("/dir/").unwrap().path, "/dir/");
        assert_eq!(RequestTarget::parse("/a/./").unwrap().path, "/a/");
    }

    #[test]
    fn absolute_form_reduced() {
        let t = RequestTarget::parse("http://host.example/cgi?a=1").unwrap();
        assert_eq!(t.path, "/cgi");
        assert_eq!(t.query.as_deref(), Some("a=1"));
        assert_eq!(
            RequestTarget::parse("http://host.example").unwrap().path,
            "/"
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(RequestTarget::parse("").is_err());
        assert!(RequestTarget::parse("notaslash").is_err());
        assert!(RequestTarget::parse("/bad%zz").is_err());
        assert!(RequestTarget::parse("/trunc%2").is_err());
        assert!(RequestTarget::parse("/nul%00byte").is_err());
    }

    #[test]
    fn query_pairs_edge_cases() {
        let t = RequestTarget::parse("/x?a=1&&b&c=").unwrap();
        assert_eq!(
            t.query_pairs(),
            vec![
                ("a".to_string(), "1".to_string()),
                ("b".to_string(), "".to_string()),
                ("c".to_string(), "".to_string()),
            ]
        );
        assert!(RequestTarget::parse("/x").unwrap().query_pairs().is_empty());
    }

    #[test]
    fn extension() {
        assert_eq!(
            RequestTarget::parse("/a/b.html").unwrap().extension(),
            Some("html")
        );
        assert_eq!(
            RequestTarget::parse("/a/b.tar.gz").unwrap().extension(),
            Some("gz")
        );
        assert_eq!(RequestTarget::parse("/a/noext").unwrap().extension(), None);
        assert_eq!(
            RequestTarget::parse("/a/.hidden").unwrap().extension(),
            None
        );
        assert_eq!(RequestTarget::parse("/a/dot.").unwrap().extension(), None);
    }

    #[test]
    fn decode_percent_basics() {
        assert_eq!(decode_percent("abc").as_deref(), Some("abc"));
        assert_eq!(decode_percent("a%41c").as_deref(), Some("aAc"));
        assert_eq!(decode_percent("%e2%82%ac").as_deref(), Some("€"));
        assert_eq!(decode_percent("%G1"), None);
        assert_eq!(decode_percent("%"), None);
        // Invalid UTF-8 after decoding.
        assert_eq!(decode_percent("%ff%fe"), None);
    }
}
