//! Table 2 — file-fetch mean response time vs. client count (§5.1).
//!
//! WebStone file mix against the three servers. The paper's finding:
//! HTTPd (process-per-request) is 2–7× slower than the threaded servers;
//! Enterprise and Swala are comparable, with Swala pulling ahead at
//! higher client counts.

use crate::report::{fmt_ms, TableReport};
use crate::scale;
use swala::{ProgramRegistry, ServerOptions, SwalaServer};
use swala_baseline::{ForkingServer, ThreadedServer};
use swala_workload::{materialize_docroot, FileMix, LoadGenerator};

pub fn run() -> TableReport {
    let clients_list: &[usize] = if scale::quick() {
        &[4, 16]
    } else {
        &[4, 8, 16, 24]
    };
    let per_client = if scale::quick() { 25 } else { 60 };

    let docroot = std::env::temp_dir().join(format!("swala-table2-{}", std::process::id()));
    materialize_docroot(&docroot).expect("materialize WebStone docroot");

    let mut report = TableReport::new(
        "table2",
        "File-fetch mean response time (ms) by client count, WebStone mix",
        &["#clients", "HTTPd", "Enterprise", "Swala", "HTTPd/Swala"],
    );

    for &clients in clients_list {
        // Fresh servers per row so connection backlogs don't leak across
        // client counts.
        let httpd = ForkingServer::start(Some(docroot.clone()), ProgramRegistry::new())
            .expect("start forking server");
        let enterprise = ThreadedServer::start(Some(docroot.clone()), ProgramRegistry::new(), 16)
            .expect("start threaded server");
        let swala = SwalaServer::start_single(
            ServerOptions {
                docroot: Some(docroot.clone()),
                pool_size: 16,
                ..Default::default()
            },
            ProgramRegistry::new(),
        )
        .expect("start swala");

        let run = |addr| {
            LoadGenerator::new(clients).run_sampler(&[addr], per_client, 1998, |rng| {
                FileMix::sample(rng).to_string()
            })
        };
        let httpd_report = run(httpd.addr());
        let ent_report = run(enterprise.addr());
        let swala_report = run(swala.http_addr());

        let ms = |r: &swala_workload::LoadReport| r.latency.mean.as_secs_f64() * 1e3;
        let (h, e, s) = (ms(&httpd_report), ms(&ent_report), ms(&swala_report));
        report.row(vec![
            clients.to_string(),
            fmt_ms(h),
            fmt_ms(e),
            fmt_ms(s),
            format!("{:.1}x", h / s.max(1e-9)),
        ]);
        assert_eq!(
            httpd_report.errors + ent_report.errors + swala_report.errors,
            0
        );

        httpd.shutdown();
        enterprise.shutdown();
        swala.shutdown();
    }
    report.note("paper: HTTPd 2–7x slower than Swala; Enterprise ≈ Swala (slightly faster at few clients, slower at many)");
    report.note("our Enterprise stand-in shares Swala's HTTP machinery, so expect Enterprise ≈ Swala throughout");
    let _ = std::fs::remove_dir_all(docroot);
    report
}
