//! The event-source seam: the loop in [`super`] is generic over
//! `EventSource`, so production runs on the epoll shim while tests drive
//! the identical loop from a deterministic scripted source.

use super::epoll::{self, Epoll, EpollEvent, EventFd};
use std::collections::VecDeque;
use std::io;
use std::os::fd::RawFd;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// What a connection currently wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Bytes to read (new request data, or a peer close).
    Read,
    /// Socket writable (response write previously hit `WouldBlock`).
    Write,
    /// Nothing — the request is executing on a worker; only errors and
    /// hangups are reported.
    None,
}

/// One readiness notification, in source-neutral terms.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// Error or hangup: the connection is dead or dying.
    pub closed: bool,
}

/// A cloneable handle that makes a blocked [`EventSource::wait`] return
/// early. Safe to call from any thread; used by the worker pool when a
/// response is ready and by `shutdown`.
#[derive(Clone)]
pub struct WakeupHandle(Arc<dyn Fn() + Send + Sync>);

impl WakeupHandle {
    pub fn new(f: impl Fn() + Send + Sync + 'static) -> WakeupHandle {
        WakeupHandle(Arc::new(f))
    }

    pub fn wake(&self) {
        (self.0)();
    }
}

/// Readiness polling, abstracted just far enough that the engine's loop
/// can be driven by a fake in tests. Registration is by raw fd with a
/// caller-chosen token; `wait` reports tokens.
pub trait EventSource: Send + 'static {
    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()>;
    fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()>;
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;
    /// Block up to `timeout` for readiness, appending to `events`
    /// (cleared first). A [`WakeupHandle::wake`] makes this return early
    /// with whatever is ready.
    fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()>;
    fn wakeup_handle(&self) -> WakeupHandle;
}

/// Token reserved for the source's internal wakeup fd; never reported.
const WAKE_TOKEN: u64 = u64::MAX;

/// The production source: the vendored epoll shim plus an eventfd waker.
pub struct EpollSource {
    epoll: Arc<Epoll>,
    wake: Arc<EventFd>,
    buf: Vec<EpollEvent>,
}

impl EpollSource {
    pub fn new() -> io::Result<EpollSource> {
        let epoll = Arc::new(Epoll::new()?);
        let wake = Arc::new(EventFd::new()?);
        epoll.add(wake.raw_fd(), epoll::EPOLLIN, WAKE_TOKEN)?;
        Ok(EpollSource {
            epoll,
            wake,
            buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    fn mask(interest: Interest) -> u32 {
        // EPOLLRDHUP on reads lets a held-open idle connection report the
        // peer's close without a read() round trip.
        match interest {
            Interest::Read => epoll::EPOLLIN | epoll::EPOLLRDHUP,
            Interest::Write => epoll::EPOLLOUT,
            Interest::None => 0,
        }
    }
}

impl EventSource for EpollSource {
    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.epoll.add(fd, Self::mask(interest), token)
    }

    fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.epoll.modify(fd, Self::mask(interest), token)
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.epoll.delete(fd)
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        events.clear();
        let n = self.epoll.wait(&mut self.buf, timeout)?;
        for ev in &self.buf[..n] {
            // Copy out of the (packed) FFI struct before use.
            let token = { ev.data };
            let bits = { ev.events };
            if token == WAKE_TOKEN {
                self.wake.drain();
                continue;
            }
            events.push(Event {
                token,
                readable: bits & (epoll::EPOLLIN | epoll::EPOLLRDHUP) != 0,
                writable: bits & epoll::EPOLLOUT != 0,
                closed: bits & (epoll::EPOLLERR | epoll::EPOLLHUP) != 0,
            });
        }
        Ok(())
    }

    fn wakeup_handle(&self) -> WakeupHandle {
        let wake = Arc::clone(&self.wake);
        WakeupHandle::new(move || wake.signal())
    }
}

/// A deterministic scripted source for tests: readiness is whatever the
/// test pushed, delivered in push order. Registrations are recorded so
/// tests can assert interest transitions.
#[derive(Default)]
pub struct FakeSourceState {
    queue: VecDeque<Event>,
    /// (fd, token, interest) log of register/modify calls.
    pub ops: Vec<(RawFd, u64, Interest)>,
    woken: bool,
}

#[derive(Clone, Default)]
pub struct FakeSource {
    state: Arc<(Mutex<FakeSourceState>, Condvar)>,
}

impl FakeSource {
    pub fn new() -> FakeSource {
        FakeSource::default()
    }

    /// Make the next `wait` deliver `event`.
    pub fn push(&self, event: Event) {
        let (lock, cond) = &*self.state;
        lock.lock().unwrap().queue.push_back(event);
        cond.notify_all();
    }

    pub fn ops(&self) -> Vec<(RawFd, u64, Interest)> {
        self.state.0.lock().unwrap().ops.clone()
    }
}

impl EventSource for FakeSource {
    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.state.0.lock().unwrap().ops.push((fd, token, interest));
        Ok(())
    }

    fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.state.0.lock().unwrap().ops.push((fd, token, interest));
        Ok(())
    }

    fn deregister(&mut self, _fd: RawFd) -> io::Result<()> {
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        events.clear();
        let (lock, cond) = &*self.state;
        let mut st = lock.lock().unwrap();
        if st.queue.is_empty() && !st.woken {
            let (guard, _) = cond.wait_timeout(st, timeout).unwrap();
            st = guard;
        }
        st.woken = false;
        events.extend(st.queue.drain(..));
        Ok(())
    }

    fn wakeup_handle(&self) -> WakeupHandle {
        let state = Arc::clone(&self.state);
        WakeupHandle::new(move || {
            let (lock, cond) = &*state;
            lock.lock().unwrap().woken = true;
            cond.notify_all();
        })
    }
}
