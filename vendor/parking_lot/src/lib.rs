//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the subset of the parking_lot API the workspace uses
//! (non-poisoning `Mutex` and `RwLock` whose guards come straight off
//! `lock()`/`read()`/`write()` without a `Result`), implemented on top of
//! `std::sync`. Poisoned locks are recovered transparently, matching
//! parking_lot's no-poisoning semantics.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex with parking_lot's infallible `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock with infallible `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
