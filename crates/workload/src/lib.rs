//! # swala-workload
//!
//! Workload substrate for the Swala reproduction:
//!
//! * [`trace`] — the request-trace model shared by the analyzer, the
//!   simulator and the live load generators;
//! * [`zipf`] — deterministic Zipf sampling (Web request popularity is
//!   famously Zipf-like, which is what makes result caching pay off);
//! * [`adl`] — a synthesizer calibrated to §3's Alexandria Digital
//!   Library access-log statistics (69,337 requests, 41.3 % CGI, 0.03 s
//!   vs 1.6 s mean service times, 97 % of time in CGI);
//! * [`analysis`] — the Table 1 computation (potential time saved by
//!   caching, per execution-time threshold);
//! * [`section53`] — the fixed 1600-request / 1122-unique trace §5.3's
//!   hit-ratio experiments (Tables 5–6) replay;
//! * [`webstone`] — the paper's WebStone file mix and a multi-threaded
//!   load generator measuring mean response time;
//! * [`latency`] — latency recording/aggregation.

pub mod adl;
pub mod analysis;
pub mod hetero;
pub mod latency;
pub mod logfile;
pub mod section53;
pub mod trace;
pub mod webstone;
pub mod zipf;

pub use adl::{synthesize_adl_trace, AdlTraceConfig};
pub use analysis::{analyze_thresholds, ThresholdRow};
pub use hetero::{heterogeneous_trace, HeteroConfig};
pub use latency::{LatencyRecorder, LatencySummary};
pub use logfile::{filter_for_replay, parse_clf, replay_and_time, ClfRecord};
pub use section53::{section53_trace, SECTION53_TOTAL, SECTION53_UNIQUE};
pub use trace::{RequestKind, Trace, TraceRequest};
pub use webstone::{materialize_docroot, FileMix, LoadGenerator, LoadReport};
pub use zipf::Zipf;
