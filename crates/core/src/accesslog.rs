//! Access logging: Common Log Format or JSON lines.
//!
//! 1998 servers wrote NCSA Common Log Format, and so does Swala by
//! default:
//!
//! ```text
//! 127.0.0.1 - - [28/Jul/1998:12:00:00 +0000] "GET /cgi-bin/adl?id=1 HTTP/1.0" 200 2048
//! ```
//!
//! `log_format json` switches each line to one JSON object with the
//! same fields (including the telemetry suffix's `out=`/`owner=`/
//! `trace=` data as proper keys), for log pipelines that would
//! otherwise regex the CLF line apart.
//!
//! Lines are buffered per write and the file is shared by all request
//! threads through a mutex — the bottleneck profile of the original
//! servers, which is fine because a log write is two orders of magnitude
//! cheaper than the dynamic requests Swala exists to serve.

use crate::config::LogFormat;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use swala_http::date::UtcDateTime;
use swala_http::{Request, Response};
use swala_obs::TraceSummary;

/// A shared, append-only access log (CLF text or JSON lines).
pub struct AccessLog {
    file: Mutex<File>,
    format: LogFormat,
}

impl AccessLog {
    /// Open (appending) a CLF text log at `path`.
    pub fn open(path: &Path) -> io::Result<AccessLog> {
        AccessLog::open_with(path, LogFormat::Text)
    }

    /// Open (appending) the log at `path` in the given line format.
    pub fn open_with(path: &Path, format: LogFormat) -> io::Result<AccessLog> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(AccessLog {
            file: Mutex::new(file),
            format,
        })
    }

    /// The configured line format.
    pub fn format(&self) -> LogFormat {
        self.format
    }

    /// Append one request/response pair without telemetry.
    pub fn log(&self, peer: &str, req: &Request, resp: &Response) {
        self.log_with(peer, req, resp, None);
    }

    /// Append one request/response pair with its trace summary (when
    /// tracing produced one). Text format splices the telemetry suffix
    /// in before the newline — the CLF prefix is unchanged, so existing
    /// log parsers (which stop at status+bytes) keep working. JSON
    /// format emits the same data as object fields.
    pub fn log_with(
        &self,
        peer: &str,
        req: &Request,
        resp: &Response,
        summary: Option<&TraceSummary>,
    ) {
        let now = std::time::SystemTime::now();
        let line = match self.format {
            LogFormat::Text => {
                let mut line = format_clf(peer, req, resp, now);
                if let Some(s) = summary {
                    line.pop();
                    line.push(' ');
                    line.push_str(&trace_suffix(s));
                    line.push('\n');
                }
                line
            }
            LogFormat::Json => format_json(peer, req, resp, now, summary),
        };
        let mut file = self.file.lock();
        // Logging must never take the server down; drop the line on error.
        let _ = file.write_all(line.as_bytes());
    }
}

/// The telemetry suffix appended to a CLF line when tracing is on:
/// outcome, owning node, trace id (hex, grep-able across nodes),
/// per-stage micros and total.
pub fn trace_suffix(s: &swala_obs::TraceSummary) -> String {
    format!(
        "out={} owner={} trace={:016x} total_us={} stages={}",
        s.outcome.as_str(),
        s.owner.map(|o| o.to_string()).unwrap_or_else(|| "-".into()),
        s.id,
        s.total_us,
        if s.stages.is_empty() { "-" } else { &s.stages },
    )
}

/// Render one CLF line (without writing it) — separated for testing.
pub fn format_clf(
    peer: &str,
    req: &Request,
    resp: &Response,
    now: std::time::SystemTime,
) -> String {
    let host = peer.rsplit_once(':').map(|(h, _)| h).unwrap_or(peer);
    let t = UtcDateTime::from_system_time(now);
    const MONTHS: [&str; 12] = [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    ];
    format!(
        "{host} - - [{:02}/{}/{:04}:{:02}:{:02}:{:02} +0000] \"{} {} {}\" {} {}\n",
        t.day,
        MONTHS[(t.month - 1) as usize],
        t.year,
        t.hour,
        t.minute,
        t.second,
        req.method,
        req.target.cache_key_string(),
        req.version,
        resp.status.as_u16(),
        resp.body.len(),
    )
}

/// Render one JSON log line (without writing it) — the same fields as
/// the CLF line plus its telemetry suffix, as one object per line.
pub fn format_json(
    peer: &str,
    req: &Request,
    resp: &Response,
    now: std::time::SystemTime,
    summary: Option<&TraceSummary>,
) -> String {
    let host = peer.rsplit_once(':').map(|(h, _)| h).unwrap_or(peer);
    let t = UtcDateTime::from_system_time(now);
    let mut line = format!(
        "{{\"host\":\"{}\",\"time\":\"{:04}-{:02}-{:02}T{:02}:{:02}:{:02}Z\",\
         \"method\":\"{}\",\"target\":\"{}\",\"version\":\"{}\",\"status\":{},\"bytes\":{}",
        json_escape(host),
        t.year,
        t.month,
        t.day,
        t.hour,
        t.minute,
        t.second,
        req.method,
        json_escape(&req.target.cache_key_string()),
        req.version,
        resp.status.as_u16(),
        resp.body.len(),
    );
    if let Some(s) = summary {
        line.push_str(&format!(
            ",\"out\":\"{}\",\"owner\":{},\"trace\":\"{:016x}\",\"total_us\":{},\"stages\":\"{}\"",
            s.outcome.as_str(),
            s.owner
                .map(|o| o.to_string())
                .unwrap_or_else(|| "null".into()),
            s.id,
            s.total_us,
            json_escape(&s.stages),
        ));
    }
    line.push_str("}\n");
    line
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, UNIX_EPOCH};
    use swala_http::{Method, StatusCode};

    fn sample() -> (Request, Response) {
        let req = Request::get("/cgi-bin/adl?id=1&ms=5").unwrap();
        let resp = Response::ok("text/html", vec![b'x'; 2048]);
        (req, resp)
    }

    #[test]
    fn clf_line_shape() {
        let (req, resp) = sample();
        // 1998-07-28 12:00:00 UTC.
        let when = UNIX_EPOCH + Duration::from_secs(901_627_200);
        let line = format_clf("10.1.2.3:51000", &req, &resp, when);
        assert_eq!(
            line,
            "10.1.2.3 - - [28/Jul/1998:12:00:00 +0000] \
             \"GET /cgi-bin/adl?id=1&ms=5 HTTP/1.0\" 200 2048\n"
        );
    }

    #[test]
    fn status_and_method_vary() {
        let mut req = Request::new(Method::Post, "/cgi-bin/x").unwrap();
        req.version = swala_http::Version::Http11;
        let mut resp = Response::error(StatusCode::NOT_FOUND);
        resp.body = b"nf".to_vec().into();
        let line = format_clf("h:1", &req, &resp, UNIX_EPOCH);
        assert!(
            line.contains("\"POST /cgi-bin/x HTTP/1.1\" 404 2"),
            "{line}"
        );
    }

    #[test]
    fn log_appends_to_file() {
        let path = std::env::temp_dir().join(format!("swala-clf-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let log = AccessLog::open(&path).unwrap();
        let (req, resp) = sample();
        log.log("1.2.3.4:9", &req, &resp);
        log.log("5.6.7.8:9", &req, &resp);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("1.2.3.4 - - ["));
        assert!(text.lines().nth(1).unwrap().starts_with("5.6.7.8"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn enriched_line_keeps_clf_prefix() {
        use swala_obs::{Outcome, TraceSummary};
        let path = std::env::temp_dir().join(format!("swala-clf-tr-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let log = AccessLog::open(&path).unwrap();
        let (req, resp) = sample();
        let summary = TraceSummary {
            id: 0x0001_0000_0000_002a,
            outcome: Outcome::LocalMem,
            owner: None,
            total_us: 123,
            stages: "rules:1,mem-tier:2".to_string(),
        };
        log.log_with("9.9.9.9:1", &req, &resp, Some(&summary));
        let text = std::fs::read_to_string(&path).unwrap();
        let line = text.lines().next().unwrap();
        // CLF prefix intact, suffix appended after status+bytes.
        assert!(
            line.contains("\" 200 2048 out=local-mem owner=- "),
            "{line}"
        );
        assert!(
            line.contains("trace=0001000000002a") || line.contains("trace=000100000000002a"),
            "{line}"
        );
        assert!(
            line.ends_with("total_us=123 stages=rules:1,mem-tier:2"),
            "{line}"
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn trace_suffix_formats_owner_and_empty_stages() {
        use swala_obs::{Outcome, TraceSummary};
        let s = TraceSummary {
            id: 7,
            outcome: Outcome::Remote,
            owner: Some(2),
            total_us: 9,
            stages: String::new(),
        };
        assert_eq!(
            trace_suffix(&s),
            "out=remote owner=2 trace=0000000000000007 total_us=9 stages=-"
        );
    }

    #[test]
    fn json_line_carries_the_same_fields() {
        use swala_obs::{Outcome, TraceSummary};
        let (req, resp) = sample();
        // 1998-07-28 12:00:00 UTC.
        let when = UNIX_EPOCH + Duration::from_secs(901_627_200);
        let summary = TraceSummary {
            id: 0x2a,
            outcome: Outcome::Remote,
            owner: Some(3),
            total_us: 456,
            stages: "dir-lookup:1,remote-fetch:400".to_string(),
        };
        let line = format_json("10.1.2.3:51000", &req, &resp, when, Some(&summary));
        assert_eq!(
            line,
            "{\"host\":\"10.1.2.3\",\"time\":\"1998-07-28T12:00:00Z\",\
             \"method\":\"GET\",\"target\":\"/cgi-bin/adl?id=1&ms=5\",\
             \"version\":\"HTTP/1.0\",\"status\":200,\"bytes\":2048,\
             \"out\":\"remote\",\"owner\":3,\"trace\":\"000000000000002a\",\
             \"total_us\":456,\"stages\":\"dir-lookup:1,remote-fetch:400\"}\n"
        );
        // Without a summary, the telemetry keys are absent entirely.
        let bare = format_json("h:1", &req, &resp, when, None);
        assert!(bare.ends_with("\"status\":200,\"bytes\":2048}\n"), "{bare}");
        assert!(!bare.contains("\"trace\""), "{bare}");
    }

    #[test]
    fn json_escapes_exotic_targets() {
        let req = Request::get("/cgi-bin/q?s=%22x%5C").unwrap();
        let resp = Response::ok("text/html", b"y".to_vec());
        let line = format_json("h:1", &req, &resp, UNIX_EPOCH, None);
        // The raw (decoded) target may hold quotes/backslashes; whatever
        // the key string is, the line must stay one valid JSON object.
        assert_eq!(line.matches('{').count(), 1, "{line}");
        assert!(line.ends_with("}\n"), "{line}");
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn json_log_file_roundtrips() {
        let path = std::env::temp_dir().join(format!("swala-json-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let log = AccessLog::open_with(&path, LogFormat::Json).unwrap();
        assert_eq!(log.format(), LogFormat::Json);
        let (req, resp) = sample();
        log.log("1.2.3.4:9", &req, &resp);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"host\":\"1.2.3.4\""), "{text}");
        assert!(text.ends_with("}\n"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn concurrent_logging_keeps_lines_whole() {
        use std::sync::Arc;
        let path = std::env::temp_dir().join(format!("swala-clf-conc-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let log = Arc::new(AccessLog::open(&path).unwrap());
        std::thread::scope(|s| {
            for t in 0..4 {
                let log = Arc::clone(&log);
                s.spawn(move || {
                    let (req, resp) = sample();
                    for _ in 0..100 {
                        log.log(&format!("10.0.0.{t}:1"), &req, &resp);
                    }
                });
            }
        });
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 400);
        for line in text.lines() {
            assert!(line.ends_with("200 2048"), "torn line: {line:?}");
        }
        let _ = std::fs::remove_file(path);
    }
}
